//===- sat/RupChecker.cpp -------------------------------------------------===//

#include "sat/RupChecker.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <deque>

using namespace denali;
using namespace denali::sat;

namespace {

/// A deliberately simple propagation engine: occurrence lists, full clause
/// scans, assignment trail with rollback. Clarity over speed.
class Propagator {
public:
  explicit Propagator(int NumVars)
      : Assign(static_cast<size_t>(NumVars), LBool::Undef) {}

  void addClause(const ClauseLits &Input) {
    // Normalize like the solver does: dedup literals; drop tautologies
    // (they can never propagate, and dropping only weakens the database,
    // which is sound for RUP checking).
    ClauseLits Lits = Input;
    std::sort(Lits.begin(), Lits.end());
    Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
    for (size_t I = 0; I + 1 < Lits.size(); ++I)
      if (Lits[I + 1] == ~Lits[I])
        return; // Tautology.
    if (Lits.empty()) {
      HasEmptyClause = true; // The database is already contradictory.
      return;
    }
    int Id = static_cast<int>(Clauses.size());
    Clauses.push_back(Lits);
    for (Lit L : Clauses.back()) {
      ensureVar(L.var());
      Occurrences[L.index()].push_back(Id);
    }
    if (Clauses.back().size() == 1)
      Units.push_back(Clauses.back()[0]); // Seeds every propagation.
  }

  void ensureVar(Var V) {
    while (static_cast<size_t>(V) >= Assign.size())
      Assign.push_back(LBool::Undef);
    if (Occurrences.size() < Assign.size() * 2)
      Occurrences.resize(Assign.size() * 2);
  }

  /// Assumes \p Lits false, propagates to fixpoint. \returns true if a
  /// conflict arises. All assignments are rolled back before returning.
  bool refutes(const ClauseLits &Negated) {
    Trail.clear();
    bool Conflict = HasEmptyClause;
    for (Lit L : Negated) {
      ensureVar(L.var());
      if (value(L) == LBool::True) { // Conflicting assumption pair.
        Conflict = true;
        break;
      }
      if (value(L) == LBool::Undef)
        assign(~L);
    }
    // Unit clauses of the database always propagate.
    for (Lit U : Units) {
      if (Conflict)
        break;
      if (value(U) == LBool::False)
        Conflict = true;
      else if (value(U) == LBool::Undef)
        assign(U);
    }
    size_t Head = 0;
    while (!Conflict && Head < Trail.size()) {
      Lit P = Trail[Head++];
      // Clauses containing ~P may have become unit or empty.
      auto It = OccList(~P);
      for (int ClauseId : It) {
        const ClauseLits &C = Clauses[static_cast<size_t>(ClauseId)];
        Lit Unit;
        bool Satisfied = false;
        unsigned Unassigned = 0;
        for (Lit L : C) {
          LBool V = value(L);
          if (V == LBool::True) {
            Satisfied = true;
            break;
          }
          if (V == LBool::Undef) {
            ++Unassigned;
            Unit = L;
          }
        }
        if (Satisfied)
          continue;
        if (Unassigned == 0) {
          Conflict = true;
          break;
        }
        if (Unassigned == 1)
          assign(Unit);
      }
    }
    for (Lit L : Trail)
      Assign[L.var()] = LBool::Undef;
    return Conflict;
  }

private:
  std::vector<ClauseLits> Clauses;
  std::vector<std::vector<int>> Occurrences; ///< By Lit::index().
  std::vector<LBool> Assign;
  std::vector<Lit> Trail;
  std::vector<Lit> Units;
  bool HasEmptyClause = false;

  const std::vector<int> &OccList(Lit L) {
    ensureVar(L.var());
    return Occurrences[L.index()];
  }

  LBool value(Lit L) const {
    LBool V = Assign[L.var()];
    if (V == LBool::Undef)
      return V;
    return L.negative() ? lboolNot(V) : V;
  }

  void assign(Lit L) {
    Assign[L.var()] = lboolFrom(!L.negative());
    Trail.push_back(L);
  }
};

} // namespace

bool denali::sat::checkRupProof(const Cnf &Formula,
                                const std::vector<ClauseLits> &Proof,
                                std::string *ErrorOut) {
  Propagator P(Formula.NumVars);
  for (const ClauseLits &C : Formula.Clauses)
    P.addClause(C);

  bool SawEmpty = false;
  for (size_t Step = 0; Step < Proof.size(); ++Step) {
    const ClauseLits &C = Proof[Step];
    if (!P.refutes(C)) {
      if (ErrorOut)
        *ErrorOut = strFormat("proof step %zu is not a RUP consequence",
                              Step);
      return false;
    }
    if (C.empty()) {
      SawEmpty = true;
      break; // Unsatisfiability established; later steps are irrelevant.
    }
    P.addClause(C);
  }
  if (!SawEmpty) {
    if (ErrorOut)
      *ErrorOut = "proof does not derive the empty clause";
    return false;
  }
  return true;
}
