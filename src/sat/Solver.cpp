//===- sat/Solver.cpp -----------------------------------------------------===//

#include "sat/Solver.h"

#include "obs/Obs.h"
#include "support/Error.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

using namespace denali;
using namespace denali::sat;

Solver::Solver() = default;

Var Solver::newVar() {
  Var V = static_cast<Var>(Assigns.size());
  Assigns.push_back(LBool::Undef);
  SavedPhase.push_back(0);
  Level.push_back(0);
  Reason.push_back(InvalidCRef);
  Activity.push_back(0.0);
  HeapPos.push_back(-1);
  SeenFlags.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

float Solver::clauseActivity(CRef C) const {
  float A;
  std::memcpy(&A, &Arena[C + 1], sizeof(float));
  return A;
}

void Solver::setClauseActivity(CRef C, float A) {
  std::memcpy(&Arena[C + 1], &A, sizeof(float));
}

Solver::CRef Solver::allocClause(const ClauseLits &Lits, bool Learnt) {
  CRef C = static_cast<CRef>(Arena.size());
  Arena.push_back(static_cast<uint32_t>(Lits.size()) |
                  (Learnt ? LearntBit : 0));
  // Word [1] is the activity for learnt clauses; problem clauses never use
  // it (claBumpActivity early-returns for them), so it carries the
  // attribution tag instead.
  Arena.push_back(Learnt ? 0 : CurrentTag);
  for (Lit L : Lits)
    Arena.push_back(static_cast<uint32_t>(L.index()));
  return C;
}

void Solver::noteClauseTags(CRef C, std::vector<uint32_t> &Out) const {
  if (clauseLearnt(C)) {
    auto It = LearntTags.find(C);
    if (It != LearntTags.end())
      Out.insert(Out.end(), It->second.begin(), It->second.end());
    return;
  }
  if (uint32_t T = Arena[C + 1])
    Out.push_back(T);
}

void Solver::noteUnitTags(Var V, std::vector<uint32_t> &Out) const {
  auto It = UnitTags.find(V);
  if (It != UnitTags.end())
    Out.insert(Out.end(), It->second.begin(), It->second.end());
}

void Solver::finalizeCore() {
  std::sort(CoreOut.begin(), CoreOut.end());
  CoreOut.erase(std::unique(CoreOut.begin(), CoreOut.end()), CoreOut.end());
}

void Solver::level0CoreBfs(std::vector<Var> &Queue) {
  // BFS over a level-0 implication cone, unioning the tags of every clause
  // it rests on (unit facts look up UnitTags). Queue vars are pre-seen.
  while (!Queue.empty()) {
    Var V = Queue.back();
    Queue.pop_back();
    if (Reason[V] != InvalidCRef) {
      CRef C = Reason[V];
      noteClauseTags(C, CoreOut);
      const Lit *Lits = clauseLits(C);
      for (uint32_t I = 0; I < clauseSize(C); ++I) {
        Var W = Lits[I].var();
        if (!SeenFlags[W]) {
          SeenFlags[W] = 1;
          SeenToClear.push_back(W);
          Queue.push_back(W);
        }
      }
    } else {
      noteUnitTags(V, CoreOut);
    }
  }
  for (Var V : SeenToClear)
    SeenFlags[V] = 0;
  SeenToClear.clear();
  finalizeCore();
}

void Solver::collectLevel0Core(CRef Confl) {
  std::vector<Var> Queue;
  noteClauseTags(Confl, CoreOut);
  const Lit *Lits = clauseLits(Confl);
  for (uint32_t I = 0; I < clauseSize(Confl); ++I) {
    Var V = Lits[I].var();
    if (!SeenFlags[V]) {
      SeenFlags[V] = 1;
      SeenToClear.push_back(V);
      Queue.push_back(V);
    }
  }
  level0CoreBfs(Queue);
}

void Solver::collectLevel0VarCore(Var Start) {
  // Attribution core of a single literal forced at level 0 (an assumption
  // the formula refutes without any search).
  std::vector<Var> Queue;
  if (!SeenFlags[Start]) {
    SeenFlags[Start] = 1;
    SeenToClear.push_back(Start);
    Queue.push_back(Start);
  }
  level0CoreBfs(Queue);
}

void Solver::attachClause(CRef C) {
  assert(clauseSize(C) >= 2 && "cannot watch short clause");
  const Lit *Lits = clauseLits(C);
  Watches[(~Lits[0]).index()].push_back(Watcher{C, Lits[1]});
  Watches[(~Lits[1]).index()].push_back(Watcher{C, Lits[0]});
}

void Solver::detachClause(CRef C) {
  const Lit *Lits = clauseLits(C);
  for (int I = 0; I < 2; ++I) {
    std::vector<Watcher> &WList = Watches[(~Lits[I]).index()];
    for (size_t J = 0; J < WList.size(); ++J)
      if (WList[J].Clause == C) {
        WList[J] = WList.back();
        WList.pop_back();
        break;
      }
  }
}

bool Solver::addClause(const ClauseLits &Input) {
  assert(decisionLevel() == 0 && "clauses must be added at level 0");
  if (Unsatisfiable)
    return false;
  // Normalize: sort, dedup, drop false literals, detect tautologies and
  // satisfied clauses.
  ClauseLits Lits = Input;
  std::sort(Lits.begin(), Lits.end());
  Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
  ClauseLits Out;
  for (size_t I = 0; I < Lits.size(); ++I) {
    Lit L = Lits[I];
    if (I + 1 < Lits.size() && Lits[I + 1] == ~L)
      return true; // Tautology.
    LBool V = value(L);
    if (V == LBool::True)
      return true; // Already satisfied at level 0.
    if (V == LBool::False)
      continue; // Falsified at level 0; drop.
    Out.push_back(L);
  }
  ++ProblemClauses;
  if (Out.empty()) {
    if (CoreTracking && CurrentTag)
      CoreOut.push_back(CurrentTag);
    Unsatisfiable = true;
    finalizeCore();
    return false;
  }
  if (Out.size() == 1) {
    if (CoreTracking && CurrentTag)
      UnitTags[Out[0].var()] = {CurrentTag};
    enqueue(Out[0], InvalidCRef);
    if (CRef Confl = propagate(); Confl != InvalidCRef) {
      if (CoreTracking)
        collectLevel0Core(Confl);
      Unsatisfiable = true;
      return false;
    }
    return true;
  }
  CRef C = allocClause(Out, /*Learnt=*/false);
  Problems.push_back(C);
  attachClause(C);
  return true;
}

void Solver::enqueue(Lit L, CRef From) {
  assert(value(L) == LBool::Undef && "enqueue of assigned literal");
  Var V = L.var();
  Assigns[V] = lboolFrom(!L.negative());
  SavedPhase[V] = L.negative() ? 0 : 1;
  Level[V] = decisionLevel();
  Reason[V] = From;
  Trail.push_back(L);
}

Solver::CRef Solver::propagate() {
  while (PropagateHead < Trail.size()) {
    Lit P = Trail[PropagateHead++];
    ++Stats.Propagations;
    std::vector<Watcher> &WList = Watches[P.index()];
    size_t KeepIdx = 0;
    for (size_t I = 0; I < WList.size(); ++I) {
      Watcher W = WList[I];
      if (value(W.Blocker) == LBool::True) {
        WList[KeepIdx++] = W;
        continue;
      }
      CRef C = W.Clause;
      Lit *Lits = clauseLits(C);
      uint32_t Size = clauseSize(C);
      // Make sure the falsified literal is Lits[1].
      Lit NotP = ~P;
      if (Lits[0] == NotP)
        std::swap(Lits[0], Lits[1]);
      assert(Lits[1] == NotP && "watch list out of sync");
      // If the first literal is true, the clause is satisfied.
      if (value(Lits[0]) == LBool::True) {
        WList[KeepIdx++] = Watcher{C, Lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool FoundWatch = false;
      for (uint32_t J = 2; J < Size; ++J) {
        if (value(Lits[J]) != LBool::False) {
          std::swap(Lits[1], Lits[J]);
          Watches[(~Lits[1]).index()].push_back(Watcher{C, Lits[0]});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      // Unit or conflicting.
      WList[KeepIdx++] = W;
      if (value(Lits[0]) == LBool::False) {
        // Conflict: keep the remaining watchers and bail out.
        for (size_t J = I + 1; J < WList.size(); ++J)
          WList[KeepIdx++] = WList[J];
        WList.resize(KeepIdx);
        PropagateHead = Trail.size();
        return C;
      }
      enqueue(Lits[0], C);
    }
    WList.resize(KeepIdx);
  }
  return InvalidCRef;
}

void Solver::varBumpActivity(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (HeapPos[V] >= 0)
    heapPercolateUp(HeapPos[V]);
}

void Solver::varDecayActivity() { VarInc /= VarDecay; }

void Solver::claBumpActivity(CRef C) {
  if (!clauseLearnt(C))
    return;
  float A = clauseActivity(C) + static_cast<float>(ClauseInc);
  if (A > 1e20f) {
    for (CRef L : Learnts)
      setClauseActivity(L, clauseActivity(L) * 1e-20f);
    ClauseInc *= 1e-20;
    A = clauseActivity(C) + static_cast<float>(ClauseInc);
  }
  setClauseActivity(C, A);
}

void Solver::claDecayActivity() { ClauseInc /= ClauseDecay; }

//===----------------------------------------------------------------------===
// Binary max-heap on Activity, used as the VSIDS order.
//===----------------------------------------------------------------------===

void Solver::heapInsert(Var V) {
  if (HeapPos[V] >= 0)
    return;
  HeapPos[V] = static_cast<int32_t>(Heap.size());
  Heap.push_back(V);
  heapPercolateUp(HeapPos[V]);
}

void Solver::heapPercolateUp(int Pos) {
  Var V = Heap[Pos];
  while (Pos > 0) {
    int Parent = (Pos - 1) / 2;
    if (Activity[Heap[Parent]] >= Activity[V])
      break;
    Heap[Pos] = Heap[Parent];
    HeapPos[Heap[Pos]] = Pos;
    Pos = Parent;
  }
  Heap[Pos] = V;
  HeapPos[V] = Pos;
}

void Solver::heapPercolateDown(int Pos) {
  Var V = Heap[Pos];
  int Size = static_cast<int>(Heap.size());
  for (;;) {
    int Child = 2 * Pos + 1;
    if (Child >= Size)
      break;
    if (Child + 1 < Size && Activity[Heap[Child + 1]] > Activity[Heap[Child]])
      ++Child;
    if (Activity[Heap[Child]] <= Activity[V])
      break;
    Heap[Pos] = Heap[Child];
    HeapPos[Heap[Pos]] = Pos;
    Pos = Child;
  }
  Heap[Pos] = V;
  HeapPos[V] = Pos;
}

Var Solver::heapRemoveMax() {
  Var V = Heap[0];
  HeapPos[V] = -1;
  Heap[0] = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    HeapPos[Heap[0]] = 0;
    heapPercolateDown(0);
  }
  return V;
}

Lit Solver::pickBranchLit() {
  while (!Heap.empty()) {
    Var V = heapRemoveMax();
    if (Assigns[V] == LBool::Undef)
      return Lit(V, SavedPhase[V] == 0);
  }
  return Lit();
}

//===----------------------------------------------------------------------===
// Conflict analysis (first UIP) with recursive clause minimization.
//===----------------------------------------------------------------------===

void Solver::analyze(CRef Confl, ClauseLits &Learnt, int &BacktrackLevel) {
  Learnt.clear();
  Learnt.push_back(Lit()); // Placeholder for the asserting literal.
  int Counter = 0;
  Lit P;
  size_t TrailIdx = Trail.size();

  if (CoreTracking)
    ResolveTags.clear();
  CRef Cur = Confl;
  do {
    assert(Cur != InvalidCRef && "reached decision without UIP");
    claBumpActivity(Cur);
    if (CoreTracking)
      noteClauseTags(Cur, ResolveTags);
    const Lit *Lits = clauseLits(Cur);
    uint32_t Size = clauseSize(Cur);
    // Skip Lits[0] when Cur is a reason clause (it is P itself).
    for (uint32_t J = (P.valid() ? 1 : 0); J < Size; ++J) {
      Lit Q = Lits[J];
      Var V = Q.var();
      if (SeenFlags[V] || Level[V] == 0) {
        // A level-0 literal resolves against a unit fact: its tag is part
        // of this learnt clause's provenance.
        if (CoreTracking && !SeenFlags[V])
          noteUnitTags(V, ResolveTags);
        continue;
      }
      SeenFlags[V] = 1;
      SeenToClear.push_back(V);
      varBumpActivity(V);
      if (Level[V] >= decisionLevel())
        ++Counter;
      else
        Learnt.push_back(Q);
    }
    // Walk the trail backwards to the next marked literal.
    while (!SeenFlags[Trail[TrailIdx - 1].var()])
      --TrailIdx;
    --TrailIdx;
    P = Trail[TrailIdx];
    Cur = Reason[P.var()];
    SeenFlags[P.var()] = 0;
    --Counter;
  } while (Counter > 0);
  Learnt[0] = ~P;

  // Clause minimization: drop literals implied by the rest of the clause.
  uint32_t AbstractLevels = 0;
  for (size_t I = 1; I < Learnt.size(); ++I)
    AbstractLevels |= 1u << (Level[Learnt[I].var()] & 31);
  size_t Keep = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    if (Reason[Learnt[I].var()] == InvalidCRef ||
        !litRedundant(Learnt[I], AbstractLevels))
      Learnt[Keep++] = Learnt[I];
  }
  Learnt.resize(Keep);

  // Compute backtrack level and move its literal to position 1.
  BacktrackLevel = 0;
  if (Learnt.size() > 1) {
    size_t MaxIdx = 1;
    for (size_t I = 2; I < Learnt.size(); ++I)
      if (Level[Learnt[I].var()] > Level[Learnt[MaxIdx].var()])
        MaxIdx = I;
    std::swap(Learnt[1], Learnt[MaxIdx]);
    BacktrackLevel = Level[Learnt[1].var()];
  }

  for (Var V : SeenToClear)
    SeenFlags[V] = 0;
  SeenToClear.clear();
}

bool Solver::litRedundant(Lit L, uint32_t AbstractLevels) {
  // DFS over the implication graph; a literal is redundant if every path
  // to decisions passes through literals already in the learnt clause.
  std::vector<Var> Stack = {L.var()};
  size_t ClearFrom = SeenToClear.size();
  while (!Stack.empty()) {
    Var V = Stack.back();
    Stack.pop_back();
    CRef R = Reason[V];
    assert(R != InvalidCRef && "redundancy check reached a decision");
    // Minimization performs extra resolutions; their provenance joins the
    // learnt clause's (collected even when the check later fails — a
    // harmless overapproximation for an attribution core).
    if (CoreTracking)
      noteClauseTags(R, ResolveTags);
    const Lit *Lits = clauseLits(R);
    uint32_t Size = clauseSize(R);
    for (uint32_t J = 1; J < Size; ++J) {
      Var W = Lits[J].var();
      if (SeenFlags[W] || Level[W] == 0)
        continue;
      if (Reason[W] == InvalidCRef ||
          !(AbstractLevels & (1u << (Level[W] & 31)))) {
        // Not provably redundant; undo marks made during this check.
        for (size_t K = ClearFrom; K < SeenToClear.size(); ++K)
          SeenFlags[SeenToClear[K]] = 0;
        SeenToClear.resize(ClearFrom);
        return false;
      }
      SeenFlags[W] = 1;
      SeenToClear.push_back(W);
      Stack.push_back(W);
    }
  }
  return true;
}

void Solver::backtrack(int ToLevel) {
  if (decisionLevel() <= ToLevel)
    return;
  size_t Bound = static_cast<size_t>(TrailLims[ToLevel]);
  for (size_t I = Trail.size(); I > Bound; --I) {
    Var V = Trail[I - 1].var();
    Assigns[V] = LBool::Undef;
    Reason[V] = InvalidCRef;
    heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLims.resize(ToLevel);
  PropagateHead = Trail.size();
}

void Solver::reduceDB() {
  size_t LearntsBefore = Learnts.size();
  // Drop the less active half of the learnt clauses (never unit reasons).
  std::sort(Learnts.begin(), Learnts.end(), [&](CRef A, CRef B) {
    return clauseActivity(A) < clauseActivity(B);
  });
  size_t Keep = 0;
  size_t Target = Learnts.size() / 2;
  for (size_t I = 0; I < Learnts.size(); ++I) {
    CRef C = Learnts[I];
    bool IsReason = false;
    const Lit *Lits = clauseLits(C);
    if (value(Lits[0]) == LBool::True && Reason[Lits[0].var()] == C)
      IsReason = true;
    if (IsReason || I >= Target || clauseSize(C) == 2) {
      Learnts[Keep++] = C;
    } else {
      detachClause(C);
      if (!LearntTags.empty())
        LearntTags.erase(C);
      WastedArenaWords += 2 + clauseSize(C);
      ++Stats.DeletedClauses;
    }
  }
  Learnts.resize(Keep);
  if (obs::enabled()) {
    obs::Registry::global().counter("sat.reduce_db").add(1);
    obs::instant("sat.reduce_db",
                 strFormat("\"learnts_before\":%zu,\"learnts_after\":%zu",
                           LearntsBefore, Keep));
  }
  // Deleted clauses leave dead words in the arena. A per-probe solver never
  // notices, but an incremental solver lives for a whole budget ladder;
  // compact once the holes dominate.
  if (WastedArenaWords > Arena.size() / 3)
    compactArena();
}

void Solver::compactArena() {
  // Copy live clauses into a fresh arena, leaving a forwarding pointer in
  // each old header, then remap every outstanding CRef (clause lists,
  // reasons of assigned variables, watchers). Safe at the point reduceDB
  // runs: no conflict in flight and the propagation queue is drained.
  std::vector<uint32_t> NewArena;
  NewArena.reserve(Arena.size() > WastedArenaWords
                       ? Arena.size() - WastedArenaWords
                       : 0);
  auto moveClause = [&](CRef C) {
    CRef N = static_cast<CRef>(NewArena.size());
    uint32_t Words = 2 + clauseSize(C);
    for (uint32_t I = 0; I < Words; ++I)
      NewArena.push_back(Arena[C + I]);
    Arena[C] = N; // Forwarding pointer (the old header is dead now).
    return N;
  };
  // Every live clause is in exactly one of Problems/Learnts, so each moves
  // exactly once; Reason/Watcher references are then pure lookups.
  for (CRef &C : Problems)
    C = moveClause(C);
  for (CRef &C : Learnts)
    C = moveClause(C);
  for (size_t V = 0; V < Assigns.size(); ++V)
    if (Assigns[V] != LBool::Undef && Reason[V] != InvalidCRef)
      Reason[V] = Arena[Reason[V]];
  for (std::vector<Watcher> &WList : Watches)
    for (Watcher &W : WList)
      W.Clause = Arena[W.Clause];
  if (!LearntTags.empty()) {
    // The side table is keyed by CRef; follow the forwarding pointers.
    std::unordered_map<CRef, std::vector<uint32_t>> NewTags;
    NewTags.reserve(LearntTags.size());
    for (auto &KV : LearntTags)
      NewTags.emplace(Arena[KV.first], std::move(KV.second));
    LearntTags = std::move(NewTags);
  }
  ++Stats.ArenaCollections;
  Stats.ArenaWordsReclaimed += Arena.size() - NewArena.size();
  if (obs::enabled()) {
    obs::Registry::global().counter("sat.arena_collections").add(1);
    obs::instant("sat.compact_arena",
                 strFormat("\"words_before\":%zu,\"words_after\":%zu",
                           Arena.size(), NewArena.size()));
  }
  Arena = std::move(NewArena);
  WastedArenaWords = 0;
}

uint64_t Solver::luby(uint64_t I) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  uint64_t K = 1;
  while ((1ULL << (K + 1)) - 1 <= I + 1)
    ++K;
  while ((1ULL << K) - 1 != I + 1) {
    I -= (1ULL << K) - 1;
    K = 1;
    while ((1ULL << (K + 1)) - 1 <= I + 1)
      ++K;
  }
  return 1ULL << (K - 1);
}

void Solver::analyzeFinal(Lit P) {
  // Which assumptions forced ~P? Walk the trail top-down from P's seen
  // set: decisions (= assumptions; nothing else is decided below the
  // assumption prefix when this runs) join the conflict clause negated,
  // propagated literals expand to their reason clauses (MiniSat's
  // analyzeFinal). The result is a clause over negated assumptions that
  // the formula implies — the probe ladder's "budget K is infeasible"
  // certificate head.
  FinalConflict.clear();
  FinalConflict.push_back(P);
  if (decisionLevel() == 0) {
    // The assumption was refuted by level-0 propagation alone; its
    // attribution core is the implication cone of the forced literal.
    if (CoreTracking)
      collectLevel0VarCore(P.var());
    return;
  }
  SeenFlags[P.var()] = 1;
  size_t Level0End = static_cast<size_t>(TrailLims[0]);
  for (size_t I = Trail.size(); I > Level0End; --I) {
    Var V = Trail[I - 1].var();
    if (!SeenFlags[V])
      continue;
    if (Reason[V] == InvalidCRef) {
      assert(Level[V] > 0 && "decision below level 1");
      FinalConflict.push_back(~Trail[I - 1]);
    } else {
      if (CoreTracking)
        noteClauseTags(Reason[V], CoreOut);
      const Lit *Lits = clauseLits(Reason[V]);
      uint32_t Size = clauseSize(Reason[V]);
      for (uint32_t J = 1; J < Size; ++J) {
        if (Level[Lits[J].var()] > 0)
          SeenFlags[Lits[J].var()] = 1;
        else if (CoreTracking)
          noteUnitTags(Lits[J].var(), CoreOut);
      }
    }
    SeenFlags[V] = 0;
  }
  SeenFlags[P.var()] = 0;
  if (CoreTracking)
    finalizeCore();
}

void Solver::captureModel() {
  Model.assign(Assigns.size(), 0);
  for (size_t V = 0; V < Assigns.size(); ++V)
    Model[V] = Assigns[V] == LBool::True ? 1 : 0;
}

SolveResult Solver::solve() { return solve(std::vector<Lit>{}); }

SolveResult Solver::solve(const std::vector<Lit> &Assumptions) {
  WasInterrupted = false;
  PostInterruptConflicts = 0;
  FinalConflict.clear();
  ++Stats.SolveCalls;
  if (Unsatisfiable) {
    if (LogProof && (Proof.empty() || !Proof.back().empty()))
      Proof.push_back(ClauseLits{});
    return SolveResult::Unsat;
  }
  assert(decisionLevel() == 0 && "solve() must start at level 0");
  CoreOut.clear();
  if (CRef Confl = propagate(); Confl != InvalidCRef) {
    if (CoreTracking)
      collectLevel0Core(Confl);
    Unsatisfiable = true;
    if (LogProof)
      Proof.push_back(ClauseLits{});
    return SolveResult::Unsat;
  }
  MaxLearnts = std::max<uint64_t>(ProblemClauses / 3, 2000);
  const uint64_t ConflictsAtStart = Stats.Conflicts;
  uint64_t RestartBase = 100;
  uint64_t RestartCount = 0;
  uint64_t ConflictsUntilRestart = RestartBase * luby(RestartCount);
  uint64_t ConflictsThisRestart = 0;

  SolveResult Res = SolveResult::Unknown;
  ClauseLits Learnt;
  uint64_t ConflictsAtLastPoll = Stats.Conflicts;
  for (;;) {
    // Each iteration is one conflict, restart, or decision boundary — the
    // granularity at which cancellation and the conflict budget act.
    if (Interrupt && Interrupt->load(std::memory_order_relaxed)) {
      WasInterrupted = true;
      // Work done since the last poll that read false: bounds how stale a
      // cancellation can be (at most one conflict per poll interval).
      PostInterruptConflicts = Stats.Conflicts - ConflictsAtLastPoll;
      break; // Unknown.
    }
    ConflictsAtLastPoll = Stats.Conflicts;
    CRef Confl = propagate();
    if (Confl != InvalidCRef) {
      ++Stats.Conflicts;
      ++ConflictsThisRestart;
      if (decisionLevel() == 0) {
        if (CoreTracking)
          collectLevel0Core(Confl);
        Unsatisfiable = true;
        if (LogProof)
          Proof.push_back(ClauseLits{}); // The empty clause.
        Res = SolveResult::Unsat;
        break;
      }
      int BacktrackLevel;
      analyze(Confl, Learnt, BacktrackLevel);
      if (LogProof)
        Proof.push_back(Learnt);
      if (CoreTracking) {
        std::sort(ResolveTags.begin(), ResolveTags.end());
        ResolveTags.erase(std::unique(ResolveTags.begin(), ResolveTags.end()),
                          ResolveTags.end());
      }
      backtrack(BacktrackLevel);
      if (Learnt.size() == 1) {
        if (CoreTracking && !ResolveTags.empty())
          UnitTags[Learnt[0].var()] = ResolveTags;
        enqueue(Learnt[0], InvalidCRef);
      } else {
        CRef C = allocClause(Learnt, /*Learnt=*/true);
        if (CoreTracking && !ResolveTags.empty())
          LearntTags[C] = ResolveTags;
        Learnts.push_back(C);
        ++Stats.LearntClauses;
        attachClause(C);
        claBumpActivity(C);
        enqueue(Learnt[0], C);
      }
      varDecayActivity();
      claDecayActivity();
      if (ConflictBudget &&
          Stats.Conflicts - ConflictsAtStart >= ConflictBudget)
        break; // Unknown.
      continue;
    }
    // No conflict.
    if (ConflictsThisRestart >= ConflictsUntilRestart) {
      ++Stats.Restarts;
      ++RestartCount;
      ConflictsThisRestart = 0;
      ConflictsUntilRestart = RestartBase * luby(RestartCount);
      backtrack(0);
      continue;
    }
    if (Learnts.size() >= MaxLearnts + Trail.size()) {
      reduceDB();
      MaxLearnts += MaxLearnts / 10;
    }
    // Assumptions occupy the first decision levels (one each, re-asserted
    // after every restart); real decisions only happen above them.
    Lit Next;
    while (decisionLevel() < static_cast<int>(Assumptions.size())) {
      Lit A = Assumptions[decisionLevel()];
      assert(A.var() < numVars() && "assumption over unknown variable");
      LBool V = value(A);
      if (V == LBool::True) {
        // Already implied: open a dummy level to keep indices aligned.
        TrailLims.push_back(static_cast<int32_t>(Trail.size()));
        continue;
      }
      if (V == LBool::False) {
        // The formula plus earlier assumptions refutes this one.
        analyzeFinal(~A);
        if (LogProof)
          Proof.push_back(FinalConflict);
        Res = SolveResult::Unsat;
        goto done;
      }
      Next = A;
      break;
    }
    if (!Next.valid()) {
      Next = pickBranchLit();
      if (!Next.valid()) {
        captureModel();
        Res = SolveResult::Sat; // All variables assigned.
        break;
      }
      ++Stats.Decisions;
    }
    TrailLims.push_back(static_cast<int32_t>(Trail.size()));
    enqueue(Next, InvalidCRef);
  }
done:
  backtrack(0);
  return Res;
}

std::vector<ClauseLits> Solver::problemClauses() const {
  std::vector<ClauseLits> Out;
  if (Unsatisfiable) {
    Out.push_back(ClauseLits{}); // The empty clause.
    return Out;
  }
  // Level-0 facts (units enqueued by addClause before any decision).
  size_t Level0End =
      TrailLims.empty() ? Trail.size() : static_cast<size_t>(TrailLims[0]);
  for (size_t I = 0; I < Level0End; ++I)
    if (Reason[Trail[I].var()] == InvalidCRef)
      Out.push_back(ClauseLits{Trail[I]});
  for (CRef C : Problems) {
    ClauseLits Lits;
    const Lit *P = clauseLits(C);
    for (uint32_t I = 0; I < clauseSize(C); ++I)
      Lits.push_back(P[I]);
    Out.push_back(std::move(Lits));
  }
  return Out;
}

bool Solver::modelValue(Var V) const {
  assert(V >= 0 && static_cast<size_t>(V) < Model.size() &&
         "no model for variable (no Sat answer yet?)");
  return Model[V] != 0;
}

bool Solver::modelValue(Lit L) const {
  bool V = modelValue(L.var());
  return L.negative() ? !V : V;
}
