//===- alpha/Simulator.h - Functional & timing simulation ------*- C++ -*-===//
///
/// \file
/// Historical home of the functional simulator and the timing validator.
/// Both now live in machine/Sim.h, generic over the MachineModel; this
/// header keeps the alpha:: names alive for existing users and tests.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_ALPHA_SIMULATOR_H
#define DENALI_ALPHA_SIMULATOR_H

#include "alpha/Assembly.h"
#include "alpha/ISA.h"
#include "machine/Sim.h"

namespace denali {
namespace alpha {

using machine::Trap;
using machine::trapKindName;
using machine::RunOptions;
using machine::RunResult;
using machine::runProgram;
using machine::TimingReport;
using machine::validateTiming;
using machine::validateMemoryDiscipline;

} // namespace alpha
} // namespace denali

#endif // DENALI_ALPHA_SIMULATOR_H
