//===- alpha/Assembly.h - Scheduled assembly programs -----------*- C++ -*-===//
///
/// \file
/// Historical home of the Program representation. The structures now live
/// in machine/Program.h, generic over the MachineModel; this header keeps
/// the alpha:: names alive for existing users and tests.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_ALPHA_ASSEMBLY_H
#define DENALI_ALPHA_ASSEMBLY_H

#include "alpha/ISA.h"
#include "machine/Program.h"

namespace denali {
namespace alpha {

using machine::Operand;
using machine::Instruction;
using machine::ProgramInput;
using machine::Program;
using machine::maxLiveRegisters;

} // namespace alpha
} // namespace denali

#endif // DENALI_ALPHA_ASSEMBLY_H
