//===- alpha/ISA.h - Alpha EV6 machine description --------------*- C++ -*-===//
///
/// \file
/// The architectural description consumed by the constraint generator
/// (paper, Figure 1): which functional units can execute which
/// instructions, instruction latencies, and the EV6's clustered layout —
/// expressed as a machine::MachineModel backend.
///
/// The EV6 is a quad-issue processor with four integer execution units in
/// two clusters — upper/lower (U/L) by capability, 0/1 by cluster:
///
///           cluster 0     cluster 1
///   upper      U0            U1       (shifter + byte ops live here)
///   lower      L0            L1       (loads/stores live here)
///
/// A result computed on one cluster is available to the other one cycle
/// later (the paper's "multiple register banks and extra delays for moving
/// values between banks"). Figure 4's "unused" instruction exists exactly
/// because of this constraint.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_ALPHA_ISA_H
#define DENALI_ALPHA_ISA_H

#include "ir/Term.h"
#include "machine/Machine.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace denali {
namespace alpha {

/// The generic machine types, re-exported under the historical names.
using machine::MemKind;
using InstrDesc = machine::InstrDesc;

/// The four integer issue slots of the EV6.
enum class Unit : uint8_t { U0 = 0, U1 = 1, L0 = 2, L1 = 3 };
constexpr unsigned NumUnits = 4;
constexpr unsigned NumClusters = 2;

inline unsigned unitIndex(Unit U) { return static_cast<unsigned>(U); }
inline Unit unitFromIndex(unsigned I) { return static_cast<Unit>(I); }
inline unsigned clusterOf(Unit U) {
  return (U == Unit::U0 || U == Unit::L0) ? 0 : 1;
}
const char *unitName(Unit U);

/// Unit-mask bits.
constexpr uint8_t MaskU0 = 1 << 0;
constexpr uint8_t MaskU1 = 1 << 1;
constexpr uint8_t MaskL0 = 1 << 2;
constexpr uint8_t MaskL1 = 1 << 3;
constexpr uint8_t MaskUpper = MaskU0 | MaskU1;
constexpr uint8_t MaskLower = MaskL0 | MaskL1;
constexpr uint8_t MaskAll = MaskUpper | MaskLower;

/// Machine model selector. The paper notes retargeting (to the Itanium)
/// mostly means new axioms plus a new architectural description; the
/// second model demonstrates the description is data, not code:
///  * EV6 — the paper's target: clustered quad issue, upper-only shifter
///    and byte unit, U1-only multiplier, lower-only memory pipes;
///  * SimpleQuad — an idealized single-cluster quad-issue machine where
///    every unit executes everything (an upper bound on EV6 schedules).
enum class Machine { EV6, SimpleQuad };

/// The EV6 machine description: operator -> instruction table plus global
/// timing parameters, behind the generic MachineModel interface.
class ISA : public machine::MachineModel {
public:
  explicit ISA(ir::Context &Ctx, Machine Model = Machine::EV6);

  Machine model() const { return Model; }

  std::string name() const override { return "alpha"; }

  /// Extra cycles before a result is usable on the other cluster.
  unsigned crossClusterDelay() const override {
    return Model == Machine::EV6 ? 1 : 0;
  }

  /// The 8-bit ALU literal occupies the Rb slot: the last source for plain
  /// ALU ops but the middle (value) operand for conditional moves
  /// (cmovXX Ra, Rb/#lit, Rc).
  size_t immArgIndex(const machine::InstrDesc &D,
                     size_t Arity) const override {
    if (D.Mnemonic.rfind("cmov", 0) == 0)
      return 1;
    return Arity - 1;
  }

private:
  Machine Model;
};

/// Registers the "alpha" backend (EV6 variant). Idempotent; call before
/// machine::createMachine.
void registerAlphaMachine();

} // namespace alpha
} // namespace denali

#endif // DENALI_ALPHA_ISA_H
