//===- alpha/ISA.h - Alpha EV6 machine description --------------*- C++ -*-===//
///
/// \file
/// The architectural description consumed by the constraint generator
/// (paper, Figure 1): which functional units can execute which
/// instructions, instruction latencies, and the EV6's clustered layout.
///
/// The EV6 is a quad-issue processor with four integer execution units in
/// two clusters — upper/lower (U/L) by capability, 0/1 by cluster:
///
///           cluster 0     cluster 1
///   upper      U0            U1       (shifter + byte ops live here)
///   lower      L0            L1       (loads/stores live here)
///
/// A result computed on one cluster is available to the other one cycle
/// later (the paper's "multiple register banks and extra delays for moving
/// values between banks"). Figure 4's "unused" instruction exists exactly
/// because of this constraint.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_ALPHA_ISA_H
#define DENALI_ALPHA_ISA_H

#include "ir/Term.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace denali {
namespace alpha {

/// The four integer issue slots of the EV6.
enum class Unit : uint8_t { U0 = 0, U1 = 1, L0 = 2, L1 = 3 };
constexpr unsigned NumUnits = 4;
constexpr unsigned NumClusters = 2;

inline unsigned unitIndex(Unit U) { return static_cast<unsigned>(U); }
inline Unit unitFromIndex(unsigned I) { return static_cast<Unit>(I); }
inline unsigned clusterOf(Unit U) {
  return (U == Unit::U0 || U == Unit::L0) ? 0 : 1;
}
const char *unitName(Unit U);

/// Unit-mask bits.
constexpr uint8_t MaskU0 = 1 << 0;
constexpr uint8_t MaskU1 = 1 << 1;
constexpr uint8_t MaskL0 = 1 << 2;
constexpr uint8_t MaskL1 = 1 << 3;
constexpr uint8_t MaskUpper = MaskU0 | MaskU1;
constexpr uint8_t MaskLower = MaskL0 | MaskL1;
constexpr uint8_t MaskAll = MaskUpper | MaskLower;

/// Memory behaviour of an instruction.
enum class MemKind : uint8_t { None, Load, Store };

/// One instruction of the target, tied to the operator it computes.
struct InstrDesc {
  ir::OpId Op = 0;
  std::string Mnemonic;
  uint8_t UnitMask = MaskAll;
  unsigned Latency = 1;
  MemKind Mem = MemKind::None;
  /// True if the *last* source operand may be an 8-bit literal (the Alpha
  /// ALU-literal form).
  bool AllowsImm8 = true;
};

/// Machine model selector. The paper notes retargeting (to the Itanium)
/// mostly means new axioms plus a new architectural description; the
/// second model demonstrates the description is data, not code:
///  * EV6 — the paper's target: clustered quad issue, upper-only shifter
///    and byte unit, U1-only multiplier, lower-only memory pipes;
///  * SimpleQuad — an idealized single-cluster quad-issue machine where
///    every unit executes everything (an upper bound on EV6 schedules).
enum class Machine { EV6, SimpleQuad };

/// The machine description: operator -> instruction table plus global
/// timing parameters.
class ISA {
public:
  explicit ISA(ir::Context &Ctx, Machine Model = Machine::EV6);

  Machine model() const { return Model; }

  /// \returns the instruction computing \p Op, or nullptr if \p Op is not a
  /// machine operation.
  const InstrDesc *descFor(ir::OpId Op) const;

  /// The pseudo-instruction materializing a 64-bit constant into a
  /// register (in reality lda/ldah sequences; modeled as one cycle, any
  /// unit, which matches the common 16-bit-immediate case).
  const InstrDesc &constMaterialize() const { return Ldiq; }

  /// Extra cycles before a result is usable on the other cluster.
  unsigned crossClusterDelay() const {
    return Model == Machine::EV6 ? 1 : 0;
  }

  /// Cache-hit load latency (ldq).
  unsigned loadHitLatency() const { return 3; }
  /// Latency for loads annotated \miss in the source program.
  unsigned loadMissLatency() const { return MissLatency; }
  void setLoadMissLatency(unsigned L) { MissLatency = L; }

  /// Issue width per cycle (quad issue).
  unsigned issueWidth() const { return 4; }

  /// All instruction descriptors (for the brute-force baseline's repertoire
  /// and for documentation dumps).
  const std::vector<InstrDesc> &allInstructions() const { return Table; }

private:
  Machine Model;
  std::vector<InstrDesc> Table;
  std::unordered_map<ir::OpId, size_t> ByOp;
  InstrDesc Ldiq;
  unsigned MissLatency = 13;
};

} // namespace alpha
} // namespace denali

#endif // DENALI_ALPHA_ISA_H
