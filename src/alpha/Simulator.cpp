//===- alpha/Simulator.cpp ------------------------------------------------===//

#include "alpha/Simulator.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <array>
#include <map>

using namespace denali;
using namespace denali::alpha;

const char *denali::alpha::trapKindName(Trap::Kind K) {
  switch (K) {
  case Trap::Kind::UninitializedRead:
    return "uninitialized-read";
  case Trap::Kind::OutOfBounds:
    return "out-of-bounds";
  case Trap::Kind::KindMismatch:
    return "kind-mismatch";
  case Trap::Kind::DoubleWrite:
    return "double-write";
  case Trap::Kind::Stuck:
    return "stuck";
  }
  return "unknown";
}

std::string Trap::toString() const {
  switch (TheKind) {
  case Kind::UninitializedRead:
    return strFormat("trap[%s]: v%u read by '%s' but never written",
                     trapKindName(TheKind), Reg, Mnemonic.c_str());
  case Kind::OutOfBounds:
    return strFormat("trap[%s]: '%s' accesses address 0x%llx beyond the "
                     "address limit",
                     trapKindName(TheKind), Mnemonic.c_str(),
                     static_cast<unsigned long long>(Addr));
  case Kind::KindMismatch:
    return strFormat("trap[%s]: '%s' applied to operands of the wrong kind",
                     trapKindName(TheKind), Mnemonic.c_str());
  case Kind::DoubleWrite:
    return strFormat("trap[%s]: register v%u written twice (by '%s')",
                     trapKindName(TheKind), Reg, Mnemonic.c_str());
  case Kind::Stuck:
    return strFormat("trap[%s]: dataflow cycle, instructions never became "
                     "ready", trapKindName(TheKind));
  }
  return "trap[unknown]";
}

namespace {

/// Computes the dataflow value of every register (inputs + instruction
/// results). Returns false with \p Error set on failure; classified
/// failures also set \p TrapOut (when non-null).
bool computeRegValues(const ir::Context &Ctx, const Program &P,
                      const std::unordered_map<std::string, ir::Value> &Inputs,
                      const RunOptions &Opts,
                      std::unordered_map<uint32_t, ir::Value> &Regs,
                      std::string &Error, std::optional<Trap> *TrapOut);

} // namespace

RunResult denali::alpha::runProgram(
    const ir::Context &Ctx, const Program &P,
    const std::unordered_map<std::string, ir::Value> &Inputs,
    const RunOptions &Opts) {
  RunResult Result;
  std::unordered_map<uint32_t, ir::Value> Regs;
  if (!computeRegValues(Ctx, P, Inputs, Opts, Regs, Result.Error,
                        &Result.TheTrap))
    return Result;

  for (const auto &[Name, VReg] : P.Outputs) {
    auto It = Regs.find(VReg);
    if (It == Regs.end()) {
      Result.Error = strFormat("output '%s' (v%u) never written",
                               Name.c_str(), VReg);
      return Result;
    }
    Result.Outputs.emplace(Name, It->second);
  }
  Result.Ok = true;
  return Result;
}

namespace {

bool computeRegValues(const ir::Context &Ctx, const Program &P,
                      const std::unordered_map<std::string, ir::Value> &Inputs,
                      const RunOptions &Opts,
                      std::unordered_map<uint32_t, ir::Value> &Regs,
                      std::string &Error, std::optional<Trap> *TrapOut) {
  auto RaiseTrap = [&](Trap T) {
    Error = T.toString();
    if (TrapOut)
      *TrapOut = std::move(T);
    return false;
  };
  for (const ProgramInput &In : P.Inputs) {
    auto It = Inputs.find(In.Name);
    if (It == Inputs.end()) {
      Error = strFormat("missing input '%s'", In.Name.c_str());
      return false;
    }
    Regs.emplace(In.Reg, It->second);
  }

  // Writer set for trap classification: a register with no writer at all is
  // an uninitialized read; a register whose writer simply has not executed
  // yet participates in a dataflow cycle.
  std::unordered_map<uint32_t, unsigned> Writers;
  for (const ProgramInput &In : P.Inputs)
    ++Writers[In.Reg];
  for (const Instruction &I : P.Instrs)
    ++Writers[I.Dest];

  // Execute in dependency order: repeat sweeps until all writes land (a
  // valid program is acyclic, so this terminates in <= N sweeps; schedule
  // order is usually already topological, making one sweep typical).
  std::vector<const Instruction *> PendingInstrs;
  for (const Instruction &I : P.Instrs)
    PendingInstrs.push_back(&I);
  size_t LastPending = PendingInstrs.size() + 1;
  while (!PendingInstrs.empty() && PendingInstrs.size() < LastPending) {
    LastPending = PendingInstrs.size();
    std::vector<const Instruction *> Next;
    for (const Instruction *I : PendingInstrs) {
      std::vector<ir::Value> Args;
      bool Ready = true;
      for (const Operand &S : I->Srcs) {
        if (!S.isReg()) {
          Args.push_back(ir::Value::makeInt(S.Imm));
          continue;
        }
        auto It = Regs.find(S.Reg);
        if (It == Regs.end()) {
          Ready = false;
          break;
        }
        Args.push_back(It->second);
      }
      if (!Ready) {
        Next.push_back(I);
        continue;
      }
      const ir::OpInfo &Info = Ctx.Ops.info(I->Op);
      std::optional<ir::Value> V;
      if (I->Mem == MemKind::Load || I->Mem == MemKind::Store) {
        bool IsLoad = I->Mem == MemKind::Load;
        size_t WantArgs = IsLoad ? 2 : 3;
        if (Args.size() != WantArgs || !Args[0].isArray() ||
            !Args[1].isInt() || (!IsLoad && !Args[2].isInt()))
          return RaiseTrap(
              Trap{Trap::Kind::KindMismatch, I->Dest, 0, I->Mnemonic});
        uint64_t Addr = Args[1].asInt() + static_cast<uint64_t>(I->Disp);
        if (Opts.AddressLimit && Addr >= *Opts.AddressLimit)
          return RaiseTrap(
              Trap{Trap::Kind::OutOfBounds, I->Dest, Addr, I->Mnemonic});
        V = IsLoad ? ir::Value::makeInt(Args[0].select(Addr))
                   : Args[0].store(Addr, Args[2].asInt());
      } else if (Info.BuiltinOp == ir::Builtin::Const) {
        // ldiq: materialize the immediate.
        if (Args.size() != 1 || !Args[0].isInt())
          return RaiseTrap(
              Trap{Trap::Kind::KindMismatch, I->Dest, 0, I->Mnemonic});
        V = Args[0];
      } else if (Info.Kind == ir::OpKind::Builtin) {
        V = ir::evalBuiltin(Info.BuiltinOp, Args);
      }
      if (!V)
        return RaiseTrap(
            Trap{Trap::Kind::KindMismatch, I->Dest, 0, I->Mnemonic});
      if (Regs.count(I->Dest))
        return RaiseTrap(
            Trap{Trap::Kind::DoubleWrite, I->Dest, 0, I->Mnemonic});
      Regs.emplace(I->Dest, std::move(*V));
    }
    PendingInstrs = std::move(Next);
  }
  if (!PendingInstrs.empty()) {
    // Classify: a pending instruction reading a register nobody writes is
    // an uninitialized read; otherwise the writers form a cycle.
    for (const Instruction *I : PendingInstrs)
      for (const Operand &S : I->Srcs)
        if (S.isReg() && !Writers.count(S.Reg))
          return RaiseTrap(Trap{Trap::Kind::UninitializedRead, S.Reg, 0,
                                I->Mnemonic});
    return RaiseTrap(Trap{Trap::Kind::Stuck, 0, 0,
                          PendingInstrs.front()->Mnemonic});
  }
  return true;
}

} // namespace

std::optional<std::string> denali::alpha::validateMemoryDiscipline(
    const ir::Context &Ctx, const Program &P,
    const std::unordered_map<std::string, ir::Value> &Inputs) {
  // Dataflow ("promised") values per register.
  std::unordered_map<uint32_t, ir::Value> Regs;
  std::string Error;
  if (!computeRegValues(Ctx, P, Inputs, RunOptions(), Regs, Error, nullptr))
    return Error;

  // The machine's one real memory: the (sole) memory input's contents.
  std::optional<ir::Value> SharedMem;
  for (const ProgramInput &In : P.Inputs) {
    if (!In.IsMemory)
      continue;
    if (SharedMem)
      return std::string("multiple memory inputs; replay supports one");
    auto It = Inputs.find(In.Name);
    if (It == Inputs.end())
      return strFormat("missing memory input '%s'", In.Name.c_str());
    SharedMem = It->second;
  }
  if (!SharedMem)
    return std::nullopt; // No memory: nothing to check.

  // Replay in schedule order. Within one cycle, loads read the memory
  // state from before the cycle's stores (loads read early, stores write
  // at the end of the cycle).
  std::vector<const Instruction *> Sorted;
  for (const Instruction &I : P.Instrs)
    if (I.Mem != MemKind::None)
      Sorted.push_back(&I);
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const Instruction *A, const Instruction *B) {
                     if (A->Cycle != B->Cycle)
                       return A->Cycle < B->Cycle;
                     // Loads before stores within a cycle.
                     return (A->Mem == MemKind::Load) >
                            (B->Mem == MemKind::Load);
                   });
  for (const Instruction *I : Sorted) {
    auto RegVal = [&](const Operand &S) -> ir::Value {
      return S.isReg() ? Regs.at(S.Reg) : ir::Value::makeInt(S.Imm);
    };
    uint64_t Addr =
        RegVal(I->Srcs[1]).asInt() + static_cast<uint64_t>(I->Disp);
    if (I->Mem == MemKind::Load) {
      uint64_t Observed = SharedMem->select(Addr);
      uint64_t Promised = Regs.at(I->Dest).asInt();
      if (Observed != Promised)
        return strFormat(
            "load at cycle %u from address 0x%llx reads 0x%llx from real "
            "memory but the dataflow semantics promised 0x%llx",
            I->Cycle, static_cast<unsigned long long>(Addr),
            static_cast<unsigned long long>(Observed),
            static_cast<unsigned long long>(Promised));
    } else {
      SharedMem = SharedMem->store(Addr, RegVal(I->Srcs[2]).asInt());
    }
  }

  // The final real memory must match every memory output's dataflow value.
  for (const auto &[Name, VReg] : P.Outputs) {
    auto It = Regs.find(VReg);
    if (It == Regs.end() || !It->second.isArray())
      continue;
    if (!It->second.equals(*SharedMem))
      return strFormat("final real memory differs from the promised memory "
                       "value of output '%s'", Name.c_str());
  }
  return std::nullopt;
}

TimingReport denali::alpha::validateTiming(const ISA &Isa, const Program &P) {
  TimingReport Report;

  // Inputs are ready at cycle 0 on both clusters.
  // ReadyAt[vreg][cluster] = first cycle at whose *start* the value is
  // usable on that cluster.
  std::unordered_map<uint32_t, std::array<unsigned, NumClusters>> ReadyAt;
  for (const ProgramInput &In : P.Inputs)
    ReadyAt[In.Reg] = {0, 0};

  // Issue-slot occupancy.
  std::map<std::pair<unsigned, unsigned>, const Instruction *> Slots;

  // First pass: occupancy, unit legality, producer completion times.
  for (const Instruction &I : P.Instrs) {
    const InstrDesc *D = I.Op == Isa.constMaterialize().Op
                             ? &Isa.constMaterialize()
                             : Isa.descFor(I.Op);
    if (!D) {
      Report.Error = strFormat("'%s' is not a machine instruction",
                               I.Mnemonic.c_str());
      return Report;
    }
    unsigned UIdx = unitIndex(I.IssueUnit);
    if (!(D->UnitMask & (1u << UIdx))) {
      Report.Error = strFormat("'%s' cannot issue on %s", I.Mnemonic.c_str(),
                               unitName(I.IssueUnit));
      return Report;
    }
    auto Key = std::make_pair(I.Cycle, UIdx);
    if (Slots.count(Key)) {
      Report.Error = strFormat("issue slot conflict at cycle %u on %s",
                               I.Cycle, unitName(I.IssueUnit));
      return Report;
    }
    Slots.emplace(Key, &I);

    unsigned OwnCluster = clusterOf(I.IssueUnit);
    unsigned Done = I.Cycle + I.Latency; // Usable at start of this cycle.
    auto &Entry = ReadyAt[I.Dest];
    Entry[OwnCluster] = Done;
    // Memory state (a store's "result") is shared between clusters.
    Entry[1 - OwnCluster] = I.Mem == MemKind::Store
                                ? Done
                                : Done + Isa.crossClusterDelay();
  }

  // Second pass: operand readiness.
  for (const Instruction &I : P.Instrs) {
    unsigned Cluster = clusterOf(I.IssueUnit);
    for (const Operand &S : I.Srcs) {
      if (!S.isReg())
        continue;
      auto It = ReadyAt.find(S.Reg);
      if (It == ReadyAt.end()) {
        Report.Error = strFormat("v%u read but never written", S.Reg);
        return Report;
      }
      if (It->second[Cluster] > I.Cycle) {
        Report.Error = strFormat(
            "operand v%u of '%s' (cycle %u, %s) ready only at cycle %u on "
            "cluster %u",
            S.Reg, I.Mnemonic.c_str(), I.Cycle, unitName(I.IssueUnit),
            It->second[Cluster], Cluster);
        return Report;
      }
    }
    unsigned Finish = I.Cycle + I.Latency;
    Report.Makespan = std::max(Report.Makespan, Finish);
    if (Finish > P.Cycles) {
      Report.Error = strFormat(
          "instruction finishing at cycle %u exceeds budget %u", Finish,
          P.Cycles);
      return Report;
    }
  }

  Report.Ok = true;
  return Report;
}
