//===- alpha/ISA.cpp ------------------------------------------------------===//

#include "alpha/ISA.h"

#include "support/Error.h"

using namespace denali;
using namespace denali::alpha;
using denali::ir::Builtin;

const char *denali::alpha::unitName(Unit U) {
  switch (U) {
  case Unit::U0:
    return "U0";
  case Unit::U1:
    return "U1";
  case Unit::L0:
    return "L0";
  case Unit::L1:
    return "L1";
  }
  DENALI_UNREACHABLE("bad unit");
}

ISA::ISA(ir::Context &Ctx, Machine M) : Model(M) {
  // U/L by capability, 0/1 by cluster; unit index order matches the Unit
  // enum (and the historical mask constants).
  addUnit("U0", 0);
  addUnit("U1", 1);
  addUnit("L0", 0);
  addUnit("L1", 1);
  IssueWidth = 4; // Quad issue.
  HitLatency = 3; // Cache-hit ldq.

  struct Row {
    Builtin B;
    const char *Mnemonic;
    uint8_t UnitMask;
    unsigned Latency;
    MemKind Mem;
    bool Imm8;
  };
  // EV6 integer pipes: plain ALU ops issue anywhere; the shifter and the
  // byte-manipulation unit are upper-only; multiplies are U1-only;
  // loads/stores are lower-only.
  const Row Rows[] = {
      {Builtin::Add64, "addq", MaskAll, 1, MemKind::None, true},
      {Builtin::Sub64, "subq", MaskAll, 1, MemKind::None, true},
      {Builtin::Neg64, "negq", MaskAll, 1, MemKind::None, false},
      {Builtin::Mul64, "mulq", MaskU1, 7, MemKind::None, true},
      {Builtin::Umulh, "umulh", MaskU1, 7, MemKind::None, true},
      {Builtin::And64, "and", MaskAll, 1, MemKind::None, true},
      {Builtin::Or64, "bis", MaskAll, 1, MemKind::None, true},
      {Builtin::Xor64, "xor", MaskAll, 1, MemKind::None, true},
      {Builtin::Not64, "not", MaskAll, 1, MemKind::None, false},
      {Builtin::Bic64, "bic", MaskAll, 1, MemKind::None, true},
      {Builtin::Ornot64, "ornot", MaskAll, 1, MemKind::None, true},
      {Builtin::Eqv64, "eqv", MaskAll, 1, MemKind::None, true},
      {Builtin::Shl64, "sll", MaskUpper, 1, MemKind::None, true},
      {Builtin::Shr64, "srl", MaskUpper, 1, MemKind::None, true},
      {Builtin::Sar64, "sra", MaskUpper, 1, MemKind::None, true},
      {Builtin::CmpEq, "cmpeq", MaskAll, 1, MemKind::None, true},
      {Builtin::CmpUlt, "cmpult", MaskAll, 1, MemKind::None, true},
      {Builtin::CmpUle, "cmpule", MaskAll, 1, MemKind::None, true},
      {Builtin::CmpLt, "cmplt", MaskAll, 1, MemKind::None, true},
      {Builtin::CmpLe, "cmple", MaskAll, 1, MemKind::None, true},
      {Builtin::Extbl, "extbl", MaskUpper, 1, MemKind::None, true},
      {Builtin::Extwl, "extwl", MaskUpper, 1, MemKind::None, true},
      {Builtin::Insbl, "insbl", MaskUpper, 1, MemKind::None, true},
      {Builtin::Inswl, "inswl", MaskUpper, 1, MemKind::None, true},
      {Builtin::Mskbl, "mskbl", MaskUpper, 1, MemKind::None, true},
      {Builtin::Mskwl, "mskwl", MaskUpper, 1, MemKind::None, true},
      {Builtin::Zapnot, "zapnot", MaskUpper, 1, MemKind::None, true},
      {Builtin::S4Addl, "s4addq", MaskAll, 1, MemKind::None, true},
      {Builtin::S8Addl, "s8addq", MaskAll, 1, MemKind::None, true},
      {Builtin::S4Subl, "s4subq", MaskAll, 1, MemKind::None, true},
      {Builtin::S8Subl, "s8subq", MaskAll, 1, MemKind::None, true},
      {Builtin::CmovEq, "cmoveq", MaskAll, 1, MemKind::None, true},
      {Builtin::CmovNe, "cmovne", MaskAll, 1, MemKind::None, true},
      {Builtin::CmovLt, "cmovlt", MaskAll, 1, MemKind::None, true},
      {Builtin::CmovGe, "cmovge", MaskAll, 1, MemKind::None, true},
      // Memory: select(M, a) is a quadword load; store(M, a, x) a store.
      {Builtin::Select, "ldq", MaskLower, 3, MemKind::Load, false},
      {Builtin::Store, "stq", MaskLower, 1, MemKind::Store, false},
  };
  for (const Row &R : Rows) {
    InstrDesc D;
    D.Op = Ctx.Ops.builtin(R.B);
    D.Mnemonic = R.Mnemonic;
    // SimpleQuad: every unit executes everything; latencies unchanged.
    D.UnitMask = Model == Machine::EV6 ? R.UnitMask : MaskAll;
    D.Latency = R.Latency;
    D.Mem = R.Mem;
    D.AllowsImm = R.Imm8;
    D.ImmMin = 0; // 8-bit unsigned ALU literal.
    D.ImmMax = 255;
    addInstr(std::move(D));
  }
  InstrDesc Ldiq;
  Ldiq.Op = Ctx.Ops.builtin(Builtin::Const);
  Ldiq.Mnemonic = "ldiq";
  Ldiq.UnitMask = MaskAll;
  Ldiq.Latency = 1;
  Ldiq.AllowsImm = false;
  setConstMaterialize(std::move(Ldiq));
}

void denali::alpha::registerAlphaMachine() {
  machine::registerMachine("alpha", [](ir::Context &Ctx) {
    return std::unique_ptr<machine::MachineModel>(
        new ISA(Ctx, Machine::EV6));
  });
}
