//===- obs/Obs.cpp --------------------------------------------------------===//

#include "obs/Obs.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <memory>
#include <mutex>

using namespace denali;
using namespace denali::obs;

//===----------------------------------------------------------------------===
// Configuration
//===----------------------------------------------------------------------===

std::atomic<bool> obs::detail::EnabledFlag{false};
std::atomic<bool> obs::detail::EventsFlag{false};
std::atomic<int> obs::detail::LogLevelValue{0};

namespace {

std::mutex &configMutex() {
  static std::mutex M;
  return M;
}

ObsConfig &configStorage() {
  static ObsConfig C;
  return C;
}

} // namespace

void obs::configure(const ObsConfig &C) {
  {
    std::lock_guard<std::mutex> Lock(configMutex());
    configStorage() = C;
  }
  // Latch the epoch before the flag flips so the first span sees it.
  nowNs();
  detail::LogLevelValue.store(C.LogLevel, std::memory_order_relaxed);
  detail::EventsFlag.store(C.Enabled && C.Events, std::memory_order_relaxed);
  detail::EnabledFlag.store(C.Enabled, std::memory_order_relaxed);
}

ObsConfig obs::config() {
  std::lock_guard<std::mutex> Lock(configMutex());
  return configStorage();
}

int64_t obs::nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              Epoch)
      .count();
}

//===----------------------------------------------------------------------===
// Histogram
//===----------------------------------------------------------------------===

namespace {

unsigned log2Bucket(uint64_t Sample) {
  unsigned B = 0;
  while (Sample > 1) {
    Sample >>= 1;
    ++B;
  }
  return B;
}

/// The shared percentile estimator: the Q-quantile sample's bucket upper
/// edge, clamped to the exact [Min, Max] the histogram tracked.
uint64_t bucketPercentile(const std::array<uint64_t, 64> &Buckets,
                          uint64_t Count, uint64_t Min, uint64_t Max,
                          double Q) {
  if (Count == 0)
    return 0;
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(Q * static_cast<double>(Count)));
  if (Rank < 1)
    Rank = 1;
  if (Rank > Count)
    Rank = Count;
  uint64_t Cum = 0;
  for (unsigned B = 0; B < 64; ++B) {
    Cum += Buckets[B];
    if (Cum >= Rank) {
      uint64_t Edge = B >= 63 ? Max : (1ull << (B + 1)) - 1;
      return std::max(Min, std::min(Edge, Max));
    }
  }
  return Max;
}

} // namespace

uint64_t Histogram::percentile(double Q) const {
  std::array<uint64_t, 64> Snap{};
  for (unsigned B = 0; B < 64; ++B)
    Snap[B] = Buckets[B].load(std::memory_order_relaxed);
  uint64_t Cnt = count();
  return bucketPercentile(Snap, Cnt, Cnt ? min() : 0, max(), Q);
}

void Histogram::record(uint64_t Sample) {
  N.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  uint64_t Cur = Min.load(std::memory_order_relaxed);
  while (Sample < Cur &&
         !Min.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed)) {
  }
  Cur = Max.load(std::memory_order_relaxed);
  while (Sample > Cur &&
         !Max.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed)) {
  }
  Buckets[log2Bucket(Sample)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::reset() {
  N.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Min.store(~0ull, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===
// WindowedHistogram
//===----------------------------------------------------------------------===

WindowedHistogram::WindowedHistogram(int64_t WindowNs)
    : WindowNsVal(WindowNs > 0 ? WindowNs : DefaultWindowNs),
      SlotNs(std::max<int64_t>(1, WindowNsVal / (NumSlots - 1))) {}

WindowedHistogram::Slot &WindowedHistogram::slotFor(int64_t Now) {
  int64_t E = Now / SlotNs;
  Slot &S = Slots[static_cast<size_t>(E % NumSlots)];
  int64_t Cur = S.Epoch.load(std::memory_order_acquire);
  while (Cur < E) {
    if (S.Epoch.compare_exchange_weak(Cur, E, std::memory_order_acq_rel)) {
      // Won the rotation: the slot's previous epoch just expired out of the
      // window, so wipe it for the new one. A racing record() that already
      // saw the new epoch may lose its sample to this reset — one sample at
      // a slot boundary, acceptable for a monitoring window.
      S.N.store(0, std::memory_order_relaxed);
      S.Sum.store(0, std::memory_order_relaxed);
      S.Min.store(~0ull, std::memory_order_relaxed);
      S.Max.store(0, std::memory_order_relaxed);
      for (auto &B : S.Buckets)
        B.store(0, std::memory_order_relaxed);
      break;
    }
  }
  return S;
}

void WindowedHistogram::record(uint64_t Sample) { recordAt(nowNs(), Sample); }

void WindowedHistogram::recordAt(int64_t Now, uint64_t Sample) {
  Slot &S = slotFor(Now);
  S.N.fetch_add(1, std::memory_order_relaxed);
  S.Sum.fetch_add(Sample, std::memory_order_relaxed);
  uint64_t Cur = S.Min.load(std::memory_order_relaxed);
  while (Sample < Cur && !S.Min.compare_exchange_weak(
                             Cur, Sample, std::memory_order_relaxed)) {
  }
  Cur = S.Max.load(std::memory_order_relaxed);
  while (Sample > Cur && !S.Max.compare_exchange_weak(
                             Cur, Sample, std::memory_order_relaxed)) {
  }
  S.Buckets[log2Bucket(Sample)].fetch_add(1, std::memory_order_relaxed);
}

WindowedHistogram::Snapshot WindowedHistogram::snapshot() const {
  return snapshotAt(nowNs());
}

WindowedHistogram::Snapshot WindowedHistogram::snapshotAt(int64_t Now) const {
  Snapshot Out;
  Out.WindowNs = WindowNsVal;
  const int64_t CurE = Now / SlotNs;
  const int64_t MinE = CurE - (NumSlots - 2);
  uint64_t Min = ~0ull;
  for (const Slot &S : Slots) {
    int64_t E = S.Epoch.load(std::memory_order_acquire);
    if (E < MinE || E > CurE)
      continue;
    uint64_t N = S.N.load(std::memory_order_relaxed);
    if (!N)
      continue;
    Out.Count += N;
    Out.Sum += S.Sum.load(std::memory_order_relaxed);
    Min = std::min(Min, S.Min.load(std::memory_order_relaxed));
    Out.Max = std::max(Out.Max, S.Max.load(std::memory_order_relaxed));
    for (unsigned B = 0; B < 64; ++B)
      Out.Buckets[B] += S.Buckets[B].load(std::memory_order_relaxed);
  }
  Out.Min = Out.Count ? Min : 0;
  return Out;
}

uint64_t WindowedHistogram::Snapshot::percentile(double Q) const {
  return bucketPercentile(Buckets, Count, Min, Max, Q);
}

void WindowedHistogram::reset() {
  for (Slot &S : Slots) {
    S.Epoch.store(-1, std::memory_order_relaxed);
    S.N.store(0, std::memory_order_relaxed);
    S.Sum.store(0, std::memory_order_relaxed);
    S.Min.store(~0ull, std::memory_order_relaxed);
    S.Max.store(0, std::memory_order_relaxed);
    for (auto &B : S.Buckets)
      B.store(0, std::memory_order_relaxed);
  }
}

//===----------------------------------------------------------------------===
// Registry
//===----------------------------------------------------------------------===

struct Registry::Impl {
  mutable std::mutex Mutex;
  // Node-based maps: references stay stable across registrations.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> Windows;
};

Registry &Registry::global() {
  static Registry R;
  return R;
}

Registry::Impl &Registry::impl() const {
  static Impl TheImpl;
  return TheImpl;
}

Counter &Registry::counter(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  auto &Slot = I.Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &Registry::gauge(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  auto &Slot = I.Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &Registry::histogram(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  auto &Slot = I.Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

WindowedHistogram &Registry::windowed(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  auto &Slot = I.Windows[Name];
  if (!Slot)
    Slot = std::make_unique<WindowedHistogram>();
  return *Slot;
}

uint64_t Registry::counterValue(const std::string &Name) const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  auto It = I.Counters.find(Name);
  return It == I.Counters.end() ? 0 : It->second->get();
}

std::vector<std::pair<std::string, uint64_t>>
Registry::countersWithPrefix(const std::string &Prefix) const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  std::vector<std::pair<std::string, uint64_t>> Out;
  // std::map iterates in name order, so the result is already sorted; the
  // prefix range ends at the first key that no longer starts with Prefix.
  for (auto It = I.Counters.lower_bound(Prefix); It != I.Counters.end();
       ++It) {
    if (It->first.compare(0, Prefix.size(), Prefix) != 0)
      break;
    Out.emplace_back(It->first, It->second->get());
  }
  return Out;
}

namespace {

std::string histLine(const char *Kind, const std::string &Name, uint64_t N,
                     uint64_t Sum, uint64_t Min, uint64_t Max, uint64_t P50,
                     uint64_t P90, uint64_t P99, int64_t WindowNs) {
  std::string Line = strFormat(
      "%s %s count=%llu sum=%llu min=%llu max=%llu avg=%.1f "
      "p50=%llu p90=%llu p99=%llu",
      Kind, Name.c_str(), static_cast<unsigned long long>(N),
      static_cast<unsigned long long>(Sum),
      static_cast<unsigned long long>(N ? Min : 0),
      static_cast<unsigned long long>(Max),
      N ? static_cast<double>(Sum) / static_cast<double>(N) : 0.0,
      static_cast<unsigned long long>(P50),
      static_cast<unsigned long long>(P90),
      static_cast<unsigned long long>(P99));
  if (WindowNs > 0)
    Line += strFormat(" window_s=%.0f", static_cast<double>(WindowNs) / 1e9);
  return Line + "\n";
}

} // namespace

std::string Registry::summaryText() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  // Determinism contract (metrics diffs must be stable across runs): emit
  // each kind's lines in explicitly sorted name order, independent of the
  // container behind the registrations.
  std::string Out = "# denali metrics v1\n";
  std::vector<std::string> Lines;
  auto emitSorted = [&Out, &Lines]() {
    std::sort(Lines.begin(), Lines.end());
    for (const std::string &L : Lines)
      Out += L;
    Lines.clear();
  };
  for (const auto &[Name, C] : I.Counters)
    Lines.push_back(strFormat("counter %s %llu\n", Name.c_str(),
                              static_cast<unsigned long long>(C->get())));
  emitSorted();
  for (const auto &[Name, G] : I.Gauges)
    Lines.push_back(strFormat("gauge %s %lld\n", Name.c_str(),
                              static_cast<long long>(G->get())));
  emitSorted();
  for (const auto &[Name, H] : I.Histograms)
    Lines.push_back(histLine("hist", Name, H->count(), H->sum(), H->min(),
                             H->max(), H->percentile(0.50),
                             H->percentile(0.90), H->percentile(0.99), 0));
  emitSorted();
  for (const auto &[Name, W] : I.Windows) {
    WindowedHistogram::Snapshot S = W->snapshot();
    Lines.push_back(histLine("whist", Name, S.Count, S.Sum, S.Min, S.Max,
                             S.percentile(0.50), S.percentile(0.90),
                             S.percentile(0.99), S.WindowNs));
  }
  emitSorted();
  return Out;
}

std::string Registry::snapshotJson() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  auto histJson = [](uint64_t N, uint64_t Sum, uint64_t Min, uint64_t Max,
                     uint64_t P50, uint64_t P90, uint64_t P99) {
    return strFormat(
        "{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
        "\"avg\":%.1f,\"p50\":%llu,\"p90\":%llu,\"p99\":%llu}",
        static_cast<unsigned long long>(N),
        static_cast<unsigned long long>(Sum),
        static_cast<unsigned long long>(N ? Min : 0),
        static_cast<unsigned long long>(Max),
        N ? static_cast<double>(Sum) / static_cast<double>(N) : 0.0,
        static_cast<unsigned long long>(P50),
        static_cast<unsigned long long>(P90),
        static_cast<unsigned long long>(P99));
  };
  std::string Out = "\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : I.Counters) {
    Out += strFormat("%s\"%s\":%llu", First ? "" : ",",
                     jsonEscape(Name).c_str(),
                     static_cast<unsigned long long>(C->get()));
    First = false;
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &[Name, G] : I.Gauges) {
    Out += strFormat("%s\"%s\":%lld", First ? "" : ",",
                     jsonEscape(Name).c_str(),
                     static_cast<long long>(G->get()));
    First = false;
  }
  Out += "},\"hists\":{";
  First = true;
  for (const auto &[Name, H] : I.Histograms) {
    Out += strFormat("%s\"%s\":%s", First ? "" : ",",
                     jsonEscape(Name).c_str(),
                     histJson(H->count(), H->sum(), H->min(), H->max(),
                              H->percentile(0.50), H->percentile(0.90),
                              H->percentile(0.99))
                         .c_str());
    First = false;
  }
  Out += "},\"whists\":{";
  First = true;
  for (const auto &[Name, W] : I.Windows) {
    WindowedHistogram::Snapshot S = W->snapshot();
    Out += strFormat(
        "%s\"%s\":%s", First ? "" : ",", jsonEscape(Name).c_str(),
        histJson(S.Count, S.Sum, S.Min, S.Max, S.percentile(0.50),
                 S.percentile(0.90), S.percentile(0.99))
            .c_str());
    First = false;
  }
  Out += "}";
  return Out;
}

void Registry::resetAll() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  for (auto &[Name, C] : I.Counters)
    C->reset();
  for (auto &[Name, G] : I.Gauges)
    G->reset();
  for (auto &[Name, H] : I.Histograms)
    H->reset();
  for (auto &[Name, W] : I.Windows)
    W->reset();
}

//===----------------------------------------------------------------------===
// Per-thread event buffers with a lock-free publish stack
//===----------------------------------------------------------------------===

namespace {

constexpr size_t ChunkCapacity = 256;

struct EventChunk {
  std::vector<Event> Events;
  EventChunk *Next = nullptr;
};

std::atomic<EventChunk *> PublishedHead{nullptr};
std::atomic<uint32_t> NextTid{0};

/// Lock-free MPSC publish: one CAS per chunk, the only cross-thread
/// operation on the tracing hot path.
void publishChunk(EventChunk *C) {
  C->Next = PublishedHead.load(std::memory_order_relaxed);
  while (!PublishedHead.compare_exchange_weak(
      C->Next, C, std::memory_order_release, std::memory_order_relaxed)) {
  }
}

struct ThreadBuffer {
  EventChunk *Cur = nullptr;
  uint32_t Tid;

  ThreadBuffer()
      : Tid(NextTid.fetch_add(1, std::memory_order_relaxed) + 1) {}

  ~ThreadBuffer() { flush(); }

  void flush() {
    if (Cur && !Cur->Events.empty()) {
      publishChunk(Cur);
    } else {
      delete Cur;
    }
    Cur = nullptr;
  }

  void emit(Event &&E) {
    if (!Cur) {
      Cur = new EventChunk;
      Cur->Events.reserve(ChunkCapacity);
    }
    Cur->Events.push_back(std::move(E));
    if (Cur->Events.size() >= ChunkCapacity) {
      publishChunk(Cur);
      Cur = nullptr;
    }
  }
};

ThreadBuffer &threadBuffer() {
  static thread_local ThreadBuffer TB;
  return TB;
}

thread_local uint16_t SpanDepth = 0;

/// The calling thread's request context (see RequestScope).
struct RequestTls {
  uint64_t Id = 0;
  RequestTrace *Trace = nullptr;
};

thread_local RequestTls ReqTls;

std::atomic<uint64_t> NextRequestId{0};

/// Drains the publish stack; caller owns the returned events.
std::vector<Event> drainPublished() {
  EventChunk *Head = PublishedHead.exchange(nullptr, std::memory_order_acquire);
  std::vector<Event> Out;
  while (Head) {
    for (Event &E : Head->Events)
      Out.push_back(std::move(E));
    EventChunk *Next = Head->Next;
    delete Head;
    Head = Next;
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===
// Request contexts
//===----------------------------------------------------------------------===

uint64_t obs::nextRequestId() {
  return NextRequestId.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t obs::currentRequestId() { return ReqTls.Id; }

RequestToken obs::currentRequestToken() {
  RequestToken T;
  T.Id = ReqTls.Id;
  T.Trace = ReqTls.Trace;
  return T;
}

RequestScope::RequestScope(uint64_t Id, RequestTrace *Trace)
    : PrevId(ReqTls.Id), PrevTrace(ReqTls.Trace) {
  ReqTls.Id = Id;
  ReqTls.Trace = Trace;
}

RequestScope::~RequestScope() {
  ReqTls.Id = PrevId;
  ReqTls.Trace = PrevTrace;
}

void RequestTrace::append(const Event &E) {
  std::lock_guard<std::mutex> Lock(Mu);
  Retained.push_back(E);
}

std::vector<Event> RequestTrace::events() const {
  std::vector<Event> Out;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Out = Retained;
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const Event &A, const Event &B) {
                     if (A.StartNs != B.StartNs)
                       return A.StartNs < B.StartNs;
                     return A.DurNs > B.DurNs; // Parents before children.
                   });
  return Out;
}

std::string RequestTrace::spanTreeText() const {
  std::string Out;
  for (const Event &E : events()) {
    const char *Label = E.Kind == EventKind::Log ? E.Msg.c_str() : E.Name;
    if (E.Kind == EventKind::Span)
      Out += strFormat("%9.1fus ", static_cast<double>(E.DurNs) / 1000.0);
    else
      Out += strFormat("%9s   ", E.Kind == EventKind::Instant ? "·" : "log");
    Out += strFormat("%*s%s", static_cast<int>(E.Depth) * 2, "", Label);
    if (!E.Args.empty())
      Out += strFormat(" {%s}", E.Args.c_str());
    Out += "\n";
  }
  return Out;
}

/// Stamps the thread's request context onto \p E and mirrors it into the
/// installed RequestTrace (when any) before the event moves into the shared
/// buffers.
static void stampRequest(Event &E) {
  E.Req = ReqTls.Id;
  if (ReqTls.Trace)
    ReqTls.Trace->append(E);
}

void obs::flushThreadEvents() { threadBuffer().flush(); }

std::vector<Event> obs::collectEvents() {
  flushThreadEvents();
  std::vector<Event> Events = drainPublished();
  std::stable_sort(Events.begin(), Events.end(),
                   [](const Event &A, const Event &B) {
                     if (A.StartNs != B.StartNs)
                       return A.StartNs < B.StartNs;
                     return A.DurNs > B.DurNs; // Parents before children.
                   });
  return Events;
}

void obs::clearEvents() {
  flushThreadEvents();
  drainPublished();
}

void obs::instant(const char *Name, std::string Args) {
  // Instants have no metric side effect, so in metrics-only mode they are
  // worth recording only when a RequestTrace will retain them.
  if (!enabled() || (!eventsEnabled() && !ReqTls.Trace))
    return;
  Event E;
  E.Kind = EventKind::Instant;
  E.Name = Name;
  E.Tid = threadBuffer().Tid;
  E.Depth = SpanDepth;
  E.StartNs = nowNs();
  E.Args = std::move(Args);
  stampRequest(E);
  if (eventsEnabled())
    threadBuffer().emit(std::move(E));
}

void obs::logf(int Level, const char *Fmt, ...) {
  if (logLevel() < Level)
    return;
  char Buf[1024];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  std::fprintf(stderr, "[denali:%d] %s\n", Level, Buf);
  if (!enabled() || (!eventsEnabled() && !ReqTls.Trace))
    return;
  Event E;
  E.Kind = EventKind::Log;
  E.Level = static_cast<uint8_t>(Level);
  E.Name = "log";
  E.Tid = threadBuffer().Tid;
  E.Depth = SpanDepth;
  E.StartNs = nowNs();
  E.Msg = Buf;
  stampRequest(E);
  if (eventsEnabled())
    threadBuffer().emit(std::move(E));
}

//===----------------------------------------------------------------------===
// ObsSpan
//===----------------------------------------------------------------------===

ObsSpan::ObsSpan(const char *Name) : Active(enabled()) {
  if (!Active)
    return;
  // The completed event is only worth assembling when something retains it:
  // the shared buffers (event mode) or this thread's RequestTrace. The
  // duration histogram is fed either way.
  Retain = eventsEnabled() || ReqTls.Trace != nullptr;
  this->Name = Name;
  StartNs = nowNs();
  ++SpanDepth;
}

ObsSpan::~ObsSpan() {
  if (!Active)
    return;
  --SpanDepth;
  int64_t DurNs = nowNs() - StartNs;
  if (Retain) {
    Event E;
    E.Kind = EventKind::Span;
    E.Name = Name;
    E.Tid = threadBuffer().Tid;
    E.Depth = SpanDepth;
    E.StartNs = StartNs;
    E.DurNs = DurNs;
    E.Args = std::move(Args);
    stampRequest(E);
    if (eventsEnabled())
      threadBuffer().emit(std::move(E));
  }
  // Span names are string literals, so the histogram handle can be cached
  // per name *pointer*, sparing the hot path the string concatenation and
  // the registry mutex on every span destruction.
  thread_local std::unordered_map<const void *, Histogram *> HistCache;
  Histogram *&H = HistCache[static_cast<const void *>(Name)];
  if (!H)
    H = &Registry::global().histogram(std::string("span.") + Name + ".us");
  H->record(static_cast<uint64_t>(DurNs / 1000));
}

ObsSpan &ObsSpan::arg(const char *Key, uint64_t V) {
  if (Retain)
    Args += strFormat("%s\"%s\":%llu", Args.empty() ? "" : ",", Key,
                      static_cast<unsigned long long>(V));
  return *this;
}

ObsSpan &ObsSpan::arg(const char *Key, int64_t V) {
  if (Retain)
    Args += strFormat("%s\"%s\":%lld", Args.empty() ? "" : ",", Key,
                      static_cast<long long>(V));
  return *this;
}

ObsSpan &ObsSpan::arg(const char *Key, double V) {
  if (Retain)
    Args += strFormat("%s\"%s\":%.6f", Args.empty() ? "" : ",", Key, V);
  return *this;
}

ObsSpan &ObsSpan::arg(const char *Key, const char *V) {
  if (Retain)
    Args += strFormat("%s\"%s\":\"%s\"", Args.empty() ? "" : ",", Key,
                      jsonEscape(V).c_str());
  return *this;
}

//===----------------------------------------------------------------------===
// Exporters
//===----------------------------------------------------------------------===

std::string obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

namespace {

const char *phaseOf(const Event &E) {
  switch (E.Kind) {
  case EventKind::Span:
    return "X";
  case EventKind::Instant:
  case EventKind::Log:
    return "i";
  }
  return "i";
}

} // namespace

std::string obs::chromeTraceJson(const std::vector<Event> &Events) {
  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;
  for (const Event &E : Events) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += strFormat("{\"name\":\"%s\",\"cat\":\"denali\",\"ph\":\"%s\","
                     "\"ts\":%.3f,",
                     jsonEscape(E.Kind == EventKind::Log ? E.Msg
                                                         : std::string(E.Name))
                         .c_str(),
                     phaseOf(E), static_cast<double>(E.StartNs) / 1000.0);
    if (E.Kind == EventKind::Span)
      Out += strFormat("\"dur\":%.3f,", static_cast<double>(E.DurNs) / 1000.0);
    else
      Out += "\"s\":\"t\",";
    Out += strFormat("\"pid\":1,\"tid\":%u", E.Tid);
    // The request id rides in args so Perfetto can group/filter by it.
    std::string ArgsFrag = E.Args;
    if (E.Req)
      ArgsFrag = strFormat("\"req\":%llu%s%s",
                           static_cast<unsigned long long>(E.Req),
                           ArgsFrag.empty() ? "" : ",", ArgsFrag.c_str());
    if (!ArgsFrag.empty())
      Out += strFormat(",\"args\":{%s}", ArgsFrag.c_str());
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

std::string obs::jsonlText(const std::vector<Event> &Events) {
  std::string Out;
  for (const Event &E : Events) {
    const char *Kind = E.Kind == EventKind::Span      ? "span"
                       : E.Kind == EventKind::Instant ? "instant"
                                                      : "log";
    Out += strFormat("{\"kind\":\"%s\",\"name\":\"%s\",\"tid\":%u,"
                     "\"depth\":%u,\"start_us\":%.3f,\"dur_us\":%.3f",
                     Kind, jsonEscape(E.Name).c_str(), E.Tid, E.Depth,
                     static_cast<double>(E.StartNs) / 1000.0,
                     static_cast<double>(E.DurNs) / 1000.0);
    if (E.Req)
      Out += strFormat(",\"req\":%llu",
                       static_cast<unsigned long long>(E.Req));
    if (!E.Args.empty())
      Out += strFormat(",\"args\":{%s}", E.Args.c_str());
    if (E.Kind == EventKind::Log)
      Out += strFormat(",\"level\":%u,\"msg\":\"%s\"", E.Level,
                       jsonEscape(E.Msg).c_str());
    Out += "}\n";
  }
  return Out;
}

bool obs::writeTextFile(const std::string &Path, const std::string &Text) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "obs: cannot write '%s'\n", Path.c_str());
    return false;
  }
  std::fwrite(Text.data(), 1, Text.size(), Out);
  std::fclose(Out);
  return true;
}

bool obs::exportConfigured() {
  ObsConfig C = config();
  bool Ok = true;
  if (!C.TraceOut.empty() || !C.JsonlOut.empty()) {
    std::vector<Event> Events = collectEvents();
    if (!C.TraceOut.empty())
      Ok &= writeTextFile(C.TraceOut, chromeTraceJson(Events));
    if (!C.JsonlOut.empty())
      Ok &= writeTextFile(C.JsonlOut, jsonlText(Events));
  }
  if (!C.MetricsOut.empty())
    Ok &= writeTextFile(C.MetricsOut, Registry::global().summaryText());
  return Ok;
}

//===----------------------------------------------------------------------===
// MetricsFlusher
//===----------------------------------------------------------------------===

void MetricsFlusher::start(const Options &O) {
  if (Running || O.Path.empty() || O.IntervalSec <= 0)
    return;
  Opts = O;
  StopFlag = false;
  Running = true;
  Worker = std::thread([this] {
    std::unique_lock<std::mutex> Lock(Mu);
    while (!StopFlag) {
      Cv.wait_for(Lock,
                  std::chrono::duration<double>(Opts.IntervalSec),
                  [this] { return StopFlag; });
      if (StopFlag)
        break;
      Lock.unlock();
      flushOnce();
      Lock.lock();
    }
  });
}

void MetricsFlusher::stop() {
  if (!Running)
    return;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    StopFlag = true;
  }
  Cv.notify_all();
  Worker.join();
  Running = false;
  // Final snapshot so short-lived servers still leave one line behind.
  flushOnce();
}

bool MetricsFlusher::flushOnce() {
  if (Opts.Path.empty())
    return false;
  const auto WallMs =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::string Line =
      strFormat("{\"ts_ms\":%lld,%s}\n", static_cast<long long>(WallMs),
                Registry::global().snapshotJson().c_str());
  std::FILE *Out = std::fopen(Opts.Path.c_str(), "a");
  if (!Out) {
    std::fprintf(stderr, "obs: cannot append '%s'\n", Opts.Path.c_str());
    return false;
  }
  std::fwrite(Line.data(), 1, Line.size(), Out);
  long Size = std::ftell(Out);
  std::fclose(Out);
  Flushes.fetch_add(1, std::memory_order_relaxed);
  rotateIfNeeded(Size);
  return true;
}

void MetricsFlusher::rotateIfNeeded(long Size) {
  if (Size < 0 || static_cast<size_t>(Size) <= Opts.MaxBytes)
    return;
  // Shift the generations: Path.(N-1) -> Path.N, ..., Path -> Path.1. The
  // oldest generation falls off the end.
  std::remove(strFormat("%s.%d", Opts.Path.c_str(), Opts.MaxFiles).c_str());
  for (int I = Opts.MaxFiles - 1; I >= 1; --I)
    std::rename(strFormat("%s.%d", Opts.Path.c_str(), I).c_str(),
                strFormat("%s.%d", Opts.Path.c_str(), I + 1).c_str());
  std::rename(Opts.Path.c_str(),
              strFormat("%s.1", Opts.Path.c_str()).c_str());
}
