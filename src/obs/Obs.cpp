//===- obs/Obs.cpp --------------------------------------------------------===//

#include "obs/Obs.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <memory>
#include <mutex>

using namespace denali;
using namespace denali::obs;

//===----------------------------------------------------------------------===
// Configuration
//===----------------------------------------------------------------------===

std::atomic<bool> obs::detail::EnabledFlag{false};
std::atomic<int> obs::detail::LogLevelValue{0};

namespace {

std::mutex &configMutex() {
  static std::mutex M;
  return M;
}

ObsConfig &configStorage() {
  static ObsConfig C;
  return C;
}

} // namespace

void obs::configure(const ObsConfig &C) {
  {
    std::lock_guard<std::mutex> Lock(configMutex());
    configStorage() = C;
  }
  // Latch the epoch before the flag flips so the first span sees it.
  nowNs();
  detail::LogLevelValue.store(C.LogLevel, std::memory_order_relaxed);
  detail::EnabledFlag.store(C.Enabled, std::memory_order_relaxed);
}

ObsConfig obs::config() {
  std::lock_guard<std::mutex> Lock(configMutex());
  return configStorage();
}

int64_t obs::nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              Epoch)
      .count();
}

//===----------------------------------------------------------------------===
// Histogram
//===----------------------------------------------------------------------===

namespace {

unsigned log2Bucket(uint64_t Sample) {
  unsigned B = 0;
  while (Sample > 1) {
    Sample >>= 1;
    ++B;
  }
  return B;
}

} // namespace

void Histogram::record(uint64_t Sample) {
  N.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  uint64_t Cur = Min.load(std::memory_order_relaxed);
  while (Sample < Cur &&
         !Min.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed)) {
  }
  Cur = Max.load(std::memory_order_relaxed);
  while (Sample > Cur &&
         !Max.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed)) {
  }
  Buckets[log2Bucket(Sample)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::reset() {
  N.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Min.store(~0ull, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===
// Registry
//===----------------------------------------------------------------------===

struct Registry::Impl {
  mutable std::mutex Mutex;
  // Node-based maps: references stay stable across registrations.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

Registry &Registry::global() {
  static Registry R;
  return R;
}

Registry::Impl &Registry::impl() const {
  static Impl TheImpl;
  return TheImpl;
}

Counter &Registry::counter(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  auto &Slot = I.Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &Registry::gauge(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  auto &Slot = I.Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &Registry::histogram(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  auto &Slot = I.Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

uint64_t Registry::counterValue(const std::string &Name) const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  auto It = I.Counters.find(Name);
  return It == I.Counters.end() ? 0 : It->second->get();
}

std::string Registry::summaryText() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  std::string Out = "# denali metrics v1\n";
  for (const auto &[Name, C] : I.Counters)
    Out += strFormat("counter %s %llu\n", Name.c_str(),
                     static_cast<unsigned long long>(C->get()));
  for (const auto &[Name, G] : I.Gauges)
    Out += strFormat("gauge %s %lld\n", Name.c_str(),
                     static_cast<long long>(G->get()));
  for (const auto &[Name, H] : I.Histograms) {
    uint64_t N = H->count();
    Out += strFormat(
        "hist %s count=%llu sum=%llu min=%llu max=%llu avg=%.1f\n",
        Name.c_str(), static_cast<unsigned long long>(N),
        static_cast<unsigned long long>(H->sum()),
        static_cast<unsigned long long>(N ? H->min() : 0),
        static_cast<unsigned long long>(H->max()),
        N ? static_cast<double>(H->sum()) / static_cast<double>(N) : 0.0);
  }
  return Out;
}

void Registry::resetAll() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  for (auto &[Name, C] : I.Counters)
    C->reset();
  for (auto &[Name, G] : I.Gauges)
    G->reset();
  for (auto &[Name, H] : I.Histograms)
    H->reset();
}

//===----------------------------------------------------------------------===
// Per-thread event buffers with a lock-free publish stack
//===----------------------------------------------------------------------===

namespace {

constexpr size_t ChunkCapacity = 256;

struct EventChunk {
  std::vector<Event> Events;
  EventChunk *Next = nullptr;
};

std::atomic<EventChunk *> PublishedHead{nullptr};
std::atomic<uint32_t> NextTid{0};

/// Lock-free MPSC publish: one CAS per chunk, the only cross-thread
/// operation on the tracing hot path.
void publishChunk(EventChunk *C) {
  C->Next = PublishedHead.load(std::memory_order_relaxed);
  while (!PublishedHead.compare_exchange_weak(
      C->Next, C, std::memory_order_release, std::memory_order_relaxed)) {
  }
}

struct ThreadBuffer {
  EventChunk *Cur = nullptr;
  uint32_t Tid;

  ThreadBuffer()
      : Tid(NextTid.fetch_add(1, std::memory_order_relaxed) + 1) {}

  ~ThreadBuffer() { flush(); }

  void flush() {
    if (Cur && !Cur->Events.empty()) {
      publishChunk(Cur);
    } else {
      delete Cur;
    }
    Cur = nullptr;
  }

  void emit(Event &&E) {
    if (!Cur) {
      Cur = new EventChunk;
      Cur->Events.reserve(ChunkCapacity);
    }
    Cur->Events.push_back(std::move(E));
    if (Cur->Events.size() >= ChunkCapacity) {
      publishChunk(Cur);
      Cur = nullptr;
    }
  }
};

ThreadBuffer &threadBuffer() {
  static thread_local ThreadBuffer TB;
  return TB;
}

thread_local uint16_t SpanDepth = 0;

/// Drains the publish stack; caller owns the returned events.
std::vector<Event> drainPublished() {
  EventChunk *Head = PublishedHead.exchange(nullptr, std::memory_order_acquire);
  std::vector<Event> Out;
  while (Head) {
    for (Event &E : Head->Events)
      Out.push_back(std::move(E));
    EventChunk *Next = Head->Next;
    delete Head;
    Head = Next;
  }
  return Out;
}

} // namespace

void obs::flushThreadEvents() { threadBuffer().flush(); }

std::vector<Event> obs::collectEvents() {
  flushThreadEvents();
  std::vector<Event> Events = drainPublished();
  std::stable_sort(Events.begin(), Events.end(),
                   [](const Event &A, const Event &B) {
                     if (A.StartNs != B.StartNs)
                       return A.StartNs < B.StartNs;
                     return A.DurNs > B.DurNs; // Parents before children.
                   });
  return Events;
}

void obs::clearEvents() {
  flushThreadEvents();
  drainPublished();
}

void obs::instant(const char *Name, std::string Args) {
  if (!enabled())
    return;
  Event E;
  E.Kind = EventKind::Instant;
  E.Name = Name;
  E.Tid = threadBuffer().Tid;
  E.Depth = SpanDepth;
  E.StartNs = nowNs();
  E.Args = std::move(Args);
  threadBuffer().emit(std::move(E));
}

void obs::logf(int Level, const char *Fmt, ...) {
  if (logLevel() < Level)
    return;
  char Buf[1024];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  std::fprintf(stderr, "[denali:%d] %s\n", Level, Buf);
  if (!enabled())
    return;
  Event E;
  E.Kind = EventKind::Log;
  E.Level = static_cast<uint8_t>(Level);
  E.Name = "log";
  E.Tid = threadBuffer().Tid;
  E.Depth = SpanDepth;
  E.StartNs = nowNs();
  E.Msg = Buf;
  threadBuffer().emit(std::move(E));
}

//===----------------------------------------------------------------------===
// ObsSpan
//===----------------------------------------------------------------------===

ObsSpan::ObsSpan(const char *Name) : Active(enabled()) {
  if (!Active)
    return;
  this->Name = Name;
  StartNs = nowNs();
  ++SpanDepth;
}

ObsSpan::~ObsSpan() {
  if (!Active)
    return;
  --SpanDepth;
  int64_t DurNs = nowNs() - StartNs;
  Event E;
  E.Kind = EventKind::Span;
  E.Name = Name;
  E.Tid = threadBuffer().Tid;
  E.Depth = SpanDepth;
  E.StartNs = StartNs;
  E.DurNs = DurNs;
  E.Args = std::move(Args);
  threadBuffer().emit(std::move(E));
  // Span names are string literals, so the histogram handle can be cached
  // per name *pointer*, sparing the hot path the string concatenation and
  // the registry mutex on every span destruction.
  thread_local std::unordered_map<const void *, Histogram *> HistCache;
  Histogram *&H = HistCache[static_cast<const void *>(Name)];
  if (!H)
    H = &Registry::global().histogram(std::string("span.") + Name + ".us");
  H->record(static_cast<uint64_t>(DurNs / 1000));
}

ObsSpan &ObsSpan::arg(const char *Key, uint64_t V) {
  if (Active)
    Args += strFormat("%s\"%s\":%llu", Args.empty() ? "" : ",", Key,
                      static_cast<unsigned long long>(V));
  return *this;
}

ObsSpan &ObsSpan::arg(const char *Key, int64_t V) {
  if (Active)
    Args += strFormat("%s\"%s\":%lld", Args.empty() ? "" : ",", Key,
                      static_cast<long long>(V));
  return *this;
}

ObsSpan &ObsSpan::arg(const char *Key, double V) {
  if (Active)
    Args += strFormat("%s\"%s\":%.6f", Args.empty() ? "" : ",", Key, V);
  return *this;
}

ObsSpan &ObsSpan::arg(const char *Key, const char *V) {
  if (Active)
    Args += strFormat("%s\"%s\":\"%s\"", Args.empty() ? "" : ",", Key,
                      jsonEscape(V).c_str());
  return *this;
}

//===----------------------------------------------------------------------===
// Exporters
//===----------------------------------------------------------------------===

std::string obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

namespace {

const char *phaseOf(const Event &E) {
  switch (E.Kind) {
  case EventKind::Span:
    return "X";
  case EventKind::Instant:
  case EventKind::Log:
    return "i";
  }
  return "i";
}

} // namespace

std::string obs::chromeTraceJson(const std::vector<Event> &Events) {
  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;
  for (const Event &E : Events) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += strFormat("{\"name\":\"%s\",\"cat\":\"denali\",\"ph\":\"%s\","
                     "\"ts\":%.3f,",
                     jsonEscape(E.Kind == EventKind::Log ? E.Msg
                                                         : std::string(E.Name))
                         .c_str(),
                     phaseOf(E), static_cast<double>(E.StartNs) / 1000.0);
    if (E.Kind == EventKind::Span)
      Out += strFormat("\"dur\":%.3f,", static_cast<double>(E.DurNs) / 1000.0);
    else
      Out += "\"s\":\"t\",";
    Out += strFormat("\"pid\":1,\"tid\":%u", E.Tid);
    if (!E.Args.empty())
      Out += strFormat(",\"args\":{%s}", E.Args.c_str());
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

std::string obs::jsonlText(const std::vector<Event> &Events) {
  std::string Out;
  for (const Event &E : Events) {
    const char *Kind = E.Kind == EventKind::Span      ? "span"
                       : E.Kind == EventKind::Instant ? "instant"
                                                      : "log";
    Out += strFormat("{\"kind\":\"%s\",\"name\":\"%s\",\"tid\":%u,"
                     "\"depth\":%u,\"start_us\":%.3f,\"dur_us\":%.3f",
                     Kind, jsonEscape(E.Name).c_str(), E.Tid, E.Depth,
                     static_cast<double>(E.StartNs) / 1000.0,
                     static_cast<double>(E.DurNs) / 1000.0);
    if (!E.Args.empty())
      Out += strFormat(",\"args\":{%s}", E.Args.c_str());
    if (E.Kind == EventKind::Log)
      Out += strFormat(",\"level\":%u,\"msg\":\"%s\"", E.Level,
                       jsonEscape(E.Msg).c_str());
    Out += "}\n";
  }
  return Out;
}

bool obs::writeTextFile(const std::string &Path, const std::string &Text) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "obs: cannot write '%s'\n", Path.c_str());
    return false;
  }
  std::fwrite(Text.data(), 1, Text.size(), Out);
  std::fclose(Out);
  return true;
}

bool obs::exportConfigured() {
  ObsConfig C = config();
  bool Ok = true;
  if (!C.TraceOut.empty() || !C.JsonlOut.empty()) {
    std::vector<Event> Events = collectEvents();
    if (!C.TraceOut.empty())
      Ok &= writeTextFile(C.TraceOut, chromeTraceJson(Events));
    if (!C.JsonlOut.empty())
      Ok &= writeTextFile(C.JsonlOut, jsonlText(Events));
  }
  if (!C.MetricsOut.empty())
    Ok &= writeTextFile(C.MetricsOut, Registry::global().summaryText());
  return Ok;
}
