//===- obs/ProfileLedger.h - Persistent saturation profiles -----*- C++ -*-===//
///
/// \file
/// A persistent per-axiom saturation profile: for each (graph-options
/// fingerprint, axiom id) pair, the accumulated cost (time matching and
/// instantiating, budget overflows/skips) and yield (raw matches, asserted
/// instances, merges caused) observed across saturation runs. The matcher
/// records one row per axiom per saturate() call; `--match-adaptive` reads
/// the rows back to seed per-axiom budgets and phase assignments instead of
/// uniform budgets + blind doubling (DESIGN.md §6).
///
/// Keys are opaque strings so this layer stays below the driver: the graph
/// key is `driver::profileLedgerKey()` (the match-options fingerprint with
/// the adaptive bit masked out, so profiling runs and adaptive runs share
/// history), and the axiom id is `match::axiomLedgerId()`
/// ("<name>#<index>" — the index disambiguates axioms whose positional
/// names collide across source texts).
///
/// Persistence is JSONL — one self-contained object per line — because the
/// ledger is append-merged across processes: load() *merges* the file into
/// memory (never replaces), so `denali --profile-ledger p.jsonl` run N
/// times aggregates N runs' worth of history. Entries decay exponentially
/// once enough runs accumulate (halve-at-threshold), so stale behavior ages
/// out instead of dominating the averages forever.
///
/// Thread-safe: the compile server records from its worker pool while
/// adaptive saturations read. Lookups return by value for that reason —
/// no references into the map escape the lock.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_OBS_PROFILELEDGER_H
#define DENALI_OBS_PROFILELEDGER_H

#include <cstdint>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace denali {
namespace obs {

/// One axiom's accumulated profile under one graph key. All totals are
/// sums over `Runs` saturation runs (averages are total/Runs).
struct AxiomProfile {
  uint64_t Raw = 0;           ///< Raw matches enumerated (pre-dedup).
  uint64_t Instances = 0;     ///< Asserted instances that changed the graph.
  uint64_t Merges = 0;        ///< Direct union-find merges the asserts caused.
  uint64_t MatchNs = 0;       ///< Time enumerating this axiom's matches.
  uint64_t InstantiateNs = 0; ///< Time instantiating + asserting.
  uint64_t Overflows = 0;     ///< Rounds truncated at the axiom's budget.
  uint64_t Skips = 0;         ///< Rounds sat out by backoff.
  /// 1-based round of the first/last graph-changing assert, minimized /
  /// maximized across runs. 0 = never productive.
  unsigned FirstRound = 0;
  unsigned LastRound = 0;
  uint64_t Runs = 0; ///< Saturation runs merged into this row.

  /// The adaptive scheduler's ordering signal: instances yielded per
  /// microsecond of total self-time. 0 when no time was recorded.
  double yieldPerUs() const {
    uint64_t Ns = MatchNs + InstantiateNs;
    return Ns ? static_cast<double>(Instances) * 1000.0 /
                    static_cast<double>(Ns)
              : 0.0;
  }
};

class ProfileLedger {
public:
  /// Merges the JSONL file at \p Path into memory (totals add, Runs add,
  /// FirstRound min-nonzero / LastRound max). A missing file is success
  /// with no effect — the first run of a workflow starts cold. \returns
  /// false with \p Err set only on a malformed line.
  bool load(const std::string &Path, std::string *Err = nullptr);

  /// Same merge semantics, from an in-memory JSONL string (tests, tools).
  bool loadText(const std::string &Text, std::string *Err = nullptr);

  /// Writes the full ledger to \p Path as JSONL (rows sorted by key then
  /// axiom id, so two saves of the same state diff cleanly).
  bool save(const std::string &Path, std::string *Err = nullptr) const;

  /// Accumulates \p P into the (GraphKey, AxiomId) row. \p P.Runs should
  /// be the number of runs it represents (1 for a fresh saturate).
  /// Once a row's Runs reaches DecayThreshold the row is halved before the
  /// add — exponential forgetting, so the aggregate tracks recent behavior
  /// and the totals stay bounded.
  void record(const std::string &GraphKey, const std::string &AxiomId,
              const AxiomProfile &P);

  /// Copies the (GraphKey, AxiomId) row into \p Out. \returns false (Out
  /// untouched) when the row does not exist.
  bool lookup(const std::string &GraphKey, const std::string &AxiomId,
              AxiomProfile &Out) const;

  /// Scales every row's totals (and Runs) by \p Factor in [0,1), rounding
  /// down; rows whose Runs reach 0 are dropped. Explicit aging for tools.
  void decay(double Factor);

  /// Number of (key, axiom) rows.
  size_t size() const;

  /// All rows as (GraphKey, AxiomId, profile), sorted by key then id.
  std::vector<std::tuple<std::string, std::string, AxiomProfile>> rows() const;

  /// The JSONL serialization save() writes.
  std::string toJsonl() const;

  /// Runs per row before record() halves it first (see record()).
  static constexpr uint64_t DecayThreshold = 64;

private:
  mutable std::mutex Mu;
  // GraphKey -> AxiomId -> profile. Two levels so adaptive seeding (one
  // key, every axiom) does one outer lookup.
  std::unordered_map<std::string,
                     std::unordered_map<std::string, AxiomProfile>>
      Rows;
};

} // namespace obs
} // namespace denali

#endif // DENALI_OBS_PROFILELEDGER_H
