//===- obs/Obs.h - Tracing, metrics & profiling -----------------*- C++ -*-===//
///
/// \file
/// The unified observability layer for the match/encode/solve pipeline:
///
///  * **Metrics** — monotonic counters, gauges, and log2-bucket histograms
///    registered by name in a process-wide `Registry`. Updates are relaxed
///    atomics; registration is mutex-protected but returns stable
///    references, so hot paths cache the handle (or batch deltas per
///    round/probe, which is what the pipeline does).
///  * **Tracing** — RAII `ObsSpan`s and `instant()` markers recorded into
///    per-thread event buffers. A full buffer chunk is published to a
///    global lock-free stack (one CAS), so workers of the portfolio budget
///    search never contend on a mutex while probes run. Collected events
///    export as a Chrome `trace_event` JSON file (load in
///    `chrome://tracing` / Perfetto) or a JSONL structured log.
///  * **Logging** — `logf(level, ...)` writes leveled diagnostics to
///    stderr and mirrors them into the event stream.
///
/// Everything is off by default: every entry point first reads one relaxed
/// atomic flag (`obs::enabled()`), so the instrumented pipeline costs a
/// predicted-not-taken branch per span when disabled (<2% end to end; see
/// EXPERIMENTS.md E14). Enable with `obs::configure()` — the `denali` CLI
/// maps `--trace-out=`/`--metrics-out=`/`--log-level=` onto it.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_OBS_OBS_H
#define DENALI_OBS_OBS_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace denali {
namespace obs {

//===----------------------------------------------------------------------===
// Configuration
//===----------------------------------------------------------------------===

/// Observability knobs, wired through driver::Options and the CLI.
struct ObsConfig {
  /// Master switch. When false every obs entry point is a near-free no-op
  /// (one relaxed atomic load).
  bool Enabled = false;
  /// Whether completed events (spans, instants, log mirrors) are buffered
  /// in memory for later export. Metrics — counters, gauges, histograms,
  /// the span.<name>.us duration feeds — and installed RequestTraces work
  /// regardless. The compile server's always-on telemetry turns this off:
  /// a long-lived process with no exporter draining the buffers must not
  /// accumulate events without bound (and skipping the per-span event
  /// construction is most of the difference between "tracing" and
  /// "monitoring" overhead).
  bool Events = true;
  /// Diagnostics verbosity for logf(): 0 = silent, 1 = per-GMA summaries,
  /// 2 = per-round/per-probe detail.
  int LogLevel = 0;
  /// If nonempty, exportConfigured() writes a Chrome trace_event JSON file
  /// here (the `--trace-out=` flag).
  std::string TraceOut;
  /// If nonempty, exportConfigured() writes the collected events as JSONL
  /// (one structured event object per line) here.
  std::string JsonlOut;
  /// If nonempty, exportConfigured() writes the plain-text metrics summary
  /// here (the `--metrics-out=` flag).
  std::string MetricsOut;
};

namespace detail {
extern std::atomic<bool> EnabledFlag;
extern std::atomic<bool> EventsFlag;
extern std::atomic<int> LogLevelValue;
} // namespace detail

/// True once configure() enabled the layer. Relaxed: callers use it as a
/// fast-path gate, not for synchronization.
inline bool enabled() {
  return detail::EnabledFlag.load(std::memory_order_relaxed);
}

/// True when the layer is enabled AND event buffering is on (see
/// ObsConfig::Events). When false, spans still time themselves into their
/// duration histograms and request-scoped events still land in an installed
/// RequestTrace, but nothing accumulates in the shared trace buffers.
inline bool eventsEnabled() {
  return detail::EventsFlag.load(std::memory_order_relaxed);
}

/// The configured log level (readable without locking).
inline int logLevel() {
  return detail::LogLevelValue.load(std::memory_order_relaxed);
}

/// Installs \p C as the process-wide configuration. Idempotent; callable
/// again to reconfigure (tests toggle the layer per case).
void configure(const ObsConfig &C);

/// The current configuration (by value; the global copy is mutex-guarded).
ObsConfig config();

/// Nanoseconds since the process's trace epoch (steady_clock; the epoch is
/// latched on first use so timestamps are comparable across threads).
int64_t nowNs();

//===----------------------------------------------------------------------===
// Metrics: counters, gauges, histograms, and the registry
//===----------------------------------------------------------------------===

/// A monotonic counter. Thread-safe (relaxed increments).
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t get() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A last-value gauge with a monotone-max companion. Thread-safe.
class Gauge {
public:
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  /// Raises the gauge to \p N if larger (lock-free CAS loop).
  void noteMax(int64_t N) {
    int64_t Cur = V.load(std::memory_order_relaxed);
    while (N > Cur &&
           !V.compare_exchange_weak(Cur, N, std::memory_order_relaxed)) {
    }
  }
  int64_t get() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// A log2-bucket histogram over uint64 samples (bucket B counts samples in
/// [2^B, 2^{B+1})). Thread-safe; count/sum/min/max are exact, the
/// distribution is bucketed.
class Histogram {
public:
  void record(uint64_t Sample);
  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// ~0 when empty.
  uint64_t min() const { return Min.load(std::memory_order_relaxed); }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  /// Estimated percentile (\p Q in [0,1]) from the log2 buckets: the upper
  /// edge of the bucket holding the Q-quantile sample, clamped to
  /// [min, max]. 0 when empty.
  uint64_t percentile(double Q) const;
  void reset();

private:
  std::atomic<uint64_t> N{0}, Sum{0}, Min{~0ull}, Max{0};
  std::array<std::atomic<uint64_t>, 64> Buckets{};
};

/// A sliding-window log2 histogram: like Histogram, but samples expire after
/// the window elapses, so snapshots answer "what did latency look like over
/// the last minute" for a long-lived server rather than since process start.
///
/// Implementation: a ring of epoch-tagged slots, each covering
/// window/(slots-1) of wall time. record() claims the current slot with a
/// CAS when its epoch is stale (resetting it) and then adds with relaxed
/// atomics — no locks anywhere, so pool workers can record on the hot path.
/// A racing record() at a slot boundary may land in a slot being reset and
/// be dropped; that is acceptable for monitoring-grade windows. snapshot()
/// merges the in-window slots into an immutable Snapshot.
class WindowedHistogram {
public:
  static constexpr int64_t DefaultWindowNs = 60ll * 1000 * 1000 * 1000;

  explicit WindowedHistogram(int64_t WindowNs = DefaultWindowNs);

  /// An immutable merged view of the in-window slots.
  struct Snapshot {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Min = 0;
    uint64_t Max = 0;
    std::array<uint64_t, 64> Buckets{};
    int64_t WindowNs = 0;
    double avg() const {
      return Count ? static_cast<double>(Sum) / static_cast<double>(Count)
                   : 0.0;
    }
    /// Same estimator as Histogram::percentile (\p Q in [0,1]).
    uint64_t percentile(double Q) const;
  };

  void record(uint64_t Sample);
  Snapshot snapshot() const;
  /// Deterministic-time seams: record()/snapshot() delegate here with
  /// nowNs(). Tests drive rotation edge cases (idle gaps longer than the
  /// whole ring, snapshot racing a rotation) with explicit timestamps
  /// instead of real sleeps. \p NowNs is on the nowNs() clock.
  void recordAt(int64_t NowNs, uint64_t Sample);
  Snapshot snapshotAt(int64_t NowNs) const;
  int64_t windowNs() const { return WindowNsVal; }
  void reset();

private:
  static constexpr int NumSlots = 8;
  struct Slot {
    std::atomic<int64_t> Epoch{-1};
    std::atomic<uint64_t> N{0}, Sum{0}, Min{~0ull}, Max{0};
    std::array<std::atomic<uint64_t>, 64> Buckets{};
  };

  Slot &slotFor(int64_t Now);

  const int64_t WindowNsVal;
  const int64_t SlotNs;
  std::array<Slot, NumSlots> Slots;
};

/// The process-wide metric registry: one flat, dot-separated namespace
/// (match.*, encode.*, sat.*, search.*, span.*). Registration is lazy and
/// mutex-protected; the returned references are stable for the process
/// lifetime, so callers may cache them.
class Registry {
public:
  static Registry &global();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);
  /// A sliding-window histogram (60s window by default). Same lazy
  /// registration contract as histogram().
  WindowedHistogram &windowed(const std::string &Name);

  /// The counter's current value, or 0 when it was never registered
  /// (lookup without registering — for tests and reports).
  uint64_t counterValue(const std::string &Name) const;

  /// Every registered counter whose name starts with \p Prefix, with its
  /// current value, sorted by name. For prefix families like
  /// `match.axiom.<id>.*` where the member names are data-dependent (the
  /// server's top-axiom self-time table enumerates them this way).
  std::vector<std::pair<std::string, uint64_t>>
  countersWithPrefix(const std::string &Prefix) const;

  /// The plain-text metrics summary: one line per metric. Enumeration order
  /// is deterministic — sorted by name within each kind, kinds in the fixed
  /// order counter/gauge/hist/whist — so two captures diff cleanly:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   hist <name> count=<n> sum=<s> min=<m> max=<x> avg=<a> p50= p90= p99=
  ///   whist <name> count=... p50= p90= p99= window_s=<w>
  std::string summaryText() const;

  /// The same snapshot as one JSON object fragment (no outer braces):
  ///   "counters":{...},"gauges":{...},"hists":{...},"whists":{...}
  /// Keys are sorted; used by MetricsFlusher for the periodic JSONL feed.
  std::string snapshotJson() const;

  /// Zeroes every registered metric (registrations survive). For tests and
  /// the benches' phase boundaries.
  void resetAll();

private:
  struct Impl;
  Impl &impl() const;
};

//===----------------------------------------------------------------------===
// Tracing: events, spans, per-thread buffers
//===----------------------------------------------------------------------===

enum class EventKind : uint8_t { Span, Instant, Log };

/// One recorded trace event. Span names are expected to be string literals
/// (the pointer is stored, not the characters).
struct Event {
  EventKind Kind = EventKind::Span;
  uint8_t Level = 0;   ///< logf() level for Log events.
  uint16_t Depth = 0;  ///< Span nesting depth on the recording thread.
  uint32_t Tid = 0;    ///< Sequential per-thread id (1 = first thread seen).
  const char *Name = ""; ///< Static string; Log events use Msg instead.
  uint64_t Req = 0;    ///< Request id stamped from the active RequestScope
                       ///< (0 = no request context).
  int64_t StartNs = 0; ///< Since the trace epoch.
  int64_t DurNs = 0;   ///< 0 for instants/logs.
  std::string Args;    ///< Preformatted JSON object fragment ("\"k\":5,...").
  std::string Msg;     ///< Log message (Log events only).
};

//===----------------------------------------------------------------------===
// Request contexts
//===----------------------------------------------------------------------===
//
// The compile server mints one RequestId per request and opens a
// RequestScope around the whole pipeline; every event recorded under the
// scope (parse, canonicalize, cache probe, saturate, universe, search,
// encode) is stamped with the id, so a single request's full stage
// breakdown can be extracted from the shared trace. Scopes are thread-local
// and nestable; currentRequestToken() captures the active context so pool
// workers (the portfolio search) can re-open it on their own threads.

/// An optional per-request event retainer. When installed via RequestScope,
/// every event recorded under the scope is *also* copied here (in addition
/// to the shared trace buffers), so the server can dump a slow request's
/// span tree without draining the global stream. Mutex-protected: requests
/// record a few hundred spans at most, far off the disabled-obs hot path.
class RequestTrace {
public:
  void append(const Event &E);
  /// All retained events, sorted parents-before-children.
  std::vector<Event> events() const;
  /// A human-readable indented span tree (for slow-request logs).
  std::string spanTreeText() const;

private:
  mutable std::mutex Mu;
  std::vector<Event> Retained;
};

/// A copyable capture of the calling thread's request context; hand it to a
/// worker thread and reconstruct the context there with RequestScope.
struct RequestToken {
  uint64_t Id = 0;
  RequestTrace *Trace = nullptr;
};

/// Mints a fresh process-unique request id (1-based, atomic).
uint64_t nextRequestId();

/// The calling thread's active request id (0 when none).
uint64_t currentRequestId();

/// Captures the calling thread's request context for cross-thread
/// propagation.
RequestToken currentRequestToken();

/// RAII request context: installs \p Id (and optionally a RequestTrace) as
/// the calling thread's active request, restoring the previous context on
/// destruction. Cheap enough to use unconditionally (two thread-local
/// stores each way).
class RequestScope {
public:
  explicit RequestScope(uint64_t Id, RequestTrace *Trace = nullptr);
  explicit RequestScope(const RequestToken &T) : RequestScope(T.Id, T.Trace) {}
  ~RequestScope();

  RequestScope(const RequestScope &) = delete;
  RequestScope &operator=(const RequestScope &) = delete;

private:
  uint64_t PrevId;
  RequestTrace *PrevTrace;
};

/// Publishes the calling thread's partially filled event chunk so a
/// subsequent collectEvents() sees it. Called automatically when a chunk
/// fills and at thread exit.
void flushThreadEvents();

/// Flushes the calling thread, then drains every published chunk, returning
/// all events sorted by start time. Events of still-running foreign threads
/// that have not filled a chunk are not visible — join workers first (the
/// pipeline's pools are joined before any export).
std::vector<Event> collectEvents();

/// Discards all buffered events (calling thread + published chunks).
void clearEvents();

/// Records an instant marker. \p Args is a preformatted JSON object
/// fragment without braces (empty for none).
void instant(const char *Name, std::string Args = std::string());

/// Leveled diagnostic: printf-formats to stderr when logLevel() >= Level
/// and mirrors the line into the event stream when tracing is enabled.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(int Level, const char *Fmt, ...);

/// A RAII trace span. Construction latches the start time; destruction
/// feeds the span's duration into the `span.<name>.us` histogram and — when
/// the event will be retained anywhere (event buffering on, or a
/// RequestTrace installed on this thread) — records a complete event. All
/// methods are no-ops when the layer is disabled; active() is additionally
/// false when the event would be dropped, so callers skip arg-building in
/// metrics-only mode.
class ObsSpan {
public:
  explicit ObsSpan(const char *Name);
  ~ObsSpan();

  ObsSpan(const ObsSpan &) = delete;
  ObsSpan &operator=(const ObsSpan &) = delete;

  /// Attaches a key/value argument rendered into the Chrome trace's "args".
  ObsSpan &arg(const char *Key, uint64_t V);
  ObsSpan &arg(const char *Key, int64_t V);
  ObsSpan &arg(const char *Key, unsigned V) {
    return arg(Key, static_cast<uint64_t>(V));
  }
  ObsSpan &arg(const char *Key, int V) {
    return arg(Key, static_cast<int64_t>(V));
  }
  ObsSpan &arg(const char *Key, double V);
  /// \p V is JSON-escaped.
  ObsSpan &arg(const char *Key, const char *V);

  bool active() const { return Retain; }

private:
  bool Active;          ///< Layer enabled at construction.
  bool Retain = false;  ///< The completed event goes somewhere.
  const char *Name = nullptr;
  int64_t StartNs = 0;
  std::string Args;
};

/// Times a scope and feeds the elapsed microseconds into \p H (a registry
/// histogram). The histogram variant of support::Timer: same steady clock,
/// but the measurement lands in the metrics summary instead of a local.
class ScopedTimer {
public:
  explicit ScopedTimer(Histogram &H) : H(H), StartNs(nowNs()) {}
  ~ScopedTimer() {
    H.record(static_cast<uint64_t>((nowNs() - StartNs) / 1000));
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  Histogram &H;
  int64_t StartNs;
};

//===----------------------------------------------------------------------===
// Exporters
//===----------------------------------------------------------------------===

/// Renders \p Events as a Chrome trace_event JSON document
/// ({"traceEvents": [...]}; "X" for spans, "i" for instants/logs,
/// microsecond timestamps).
std::string chromeTraceJson(const std::vector<Event> &Events);

/// Renders \p Events as JSONL: one self-contained JSON object per line.
std::string jsonlText(const std::vector<Event> &Events);

/// Escapes \p S for embedding in a JSON string literal.
std::string jsonEscape(const std::string &S);

/// Writes \p Text to \p Path. \returns false (with a stderr note) on I/O
/// failure.
bool writeTextFile(const std::string &Path, const std::string &Text);

/// Collects events once and writes every output the current configuration
/// names (TraceOut / JsonlOut / MetricsOut). \returns true if every
/// requested file was written.
bool exportConfigured();

/// A background metrics flusher for long-lived processes: every IntervalSec
/// it appends one JSONL line — {"ts_ms":..., <Registry::snapshotJson()>} —
/// to Path, rotating Path -> Path.1 -> ... -> Path.MaxFiles when the file
/// grows past MaxBytes. configure() never spawns threads (tests reconfigure
/// constantly), so the owner (the compile server) starts/stops this
/// explicitly; stop() performs a final flush.
class MetricsFlusher {
public:
  struct Options {
    std::string Path;        ///< JSONL output; empty disables start().
    double IntervalSec = 0;  ///< <= 0 disables start().
    size_t MaxBytes = 8u << 20; ///< Rotation threshold.
    int MaxFiles = 3;        ///< Rotated generations kept (Path.1..Path.N).
  };

  MetricsFlusher() = default;
  ~MetricsFlusher() { stop(); }

  MetricsFlusher(const MetricsFlusher &) = delete;
  MetricsFlusher &operator=(const MetricsFlusher &) = delete;

  /// Starts the background thread. No-op when already running or when the
  /// options disable flushing.
  void start(const Options &O);
  /// Final flush + join. Idempotent.
  void stop();
  /// Appends one snapshot line now (also used by the background loop).
  /// \returns false on I/O failure. Public so tests can drive rotation
  /// without waiting out the interval.
  bool flushOnce();
  /// Lines written so far.
  uint64_t flushCount() const {
    return Flushes.load(std::memory_order_relaxed);
  }

private:
  void rotateIfNeeded(long Size);

  Options Opts;
  std::thread Worker;
  std::mutex Mu;
  std::condition_variable Cv;
  bool StopFlag = false;
  bool Running = false;
  std::atomic<uint64_t> Flushes{0};
};

} // namespace obs
} // namespace denali

#endif // DENALI_OBS_OBS_H
