//===- obs/ProfileLedger.cpp ----------------------------------------------===//

#include "obs/ProfileLedger.h"

#include "obs/Obs.h"
#include "support/Json.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace denali;
using namespace denali::obs;
namespace json = support::json;

namespace {

/// Merges \p P into \p Row: totals add, Runs add, FirstRound is the
/// smallest nonzero, LastRound the largest.
void mergeInto(AxiomProfile &Row, const AxiomProfile &P) {
  Row.Raw += P.Raw;
  Row.Instances += P.Instances;
  Row.Merges += P.Merges;
  Row.MatchNs += P.MatchNs;
  Row.InstantiateNs += P.InstantiateNs;
  Row.Overflows += P.Overflows;
  Row.Skips += P.Skips;
  if (P.FirstRound &&
      (Row.FirstRound == 0 || P.FirstRound < Row.FirstRound))
    Row.FirstRound = P.FirstRound;
  Row.LastRound = std::max(Row.LastRound, P.LastRound);
  Row.Runs += P.Runs;
}

void halve(AxiomProfile &Row) {
  Row.Raw /= 2;
  Row.Instances /= 2;
  Row.Merges /= 2;
  Row.MatchNs /= 2;
  Row.InstantiateNs /= 2;
  Row.Overflows /= 2;
  Row.Skips /= 2;
  Row.Runs /= 2;
  // First/LastRound are positions, not totals — they survive decay.
}

uint64_t fieldU64(const json::Value &Obj, const char *Name) {
  const json::Value *F = Obj.field(Name);
  return F && F->isNumber() && F->numberValue() > 0
             ? static_cast<uint64_t>(F->numberValue())
             : 0;
}

} // namespace

bool ProfileLedger::load(const std::string &Path, std::string *Err) {
  std::ifstream In(Path);
  if (!In.is_open())
    return true; // Cold start: nothing to merge.
  std::stringstream Buf;
  Buf << In.rdbuf();
  return loadText(Buf.str(), Err);
}

bool ProfileLedger::loadText(const std::string &Text, std::string *Err) {
  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    std::string JsonErr;
    std::unique_ptr<json::Value> V = json::parse(Line, &JsonErr);
    if (!V || !V->isObject()) {
      if (Err)
        *Err = strFormat("ledger line %zu: %s",
                         LineNo, JsonErr.empty() ? "not an object"
                                                 : JsonErr.c_str());
      return false;
    }
    const json::Value *Key = V->field("key");
    const json::Value *Ax = V->field("axiom");
    if (!Key || !Key->isString() || !Ax || !Ax->isString()) {
      if (Err)
        *Err = strFormat("ledger line %zu: missing key/axiom", LineNo);
      return false;
    }
    AxiomProfile P;
    P.Raw = fieldU64(*V, "raw");
    P.Instances = fieldU64(*V, "inst");
    P.Merges = fieldU64(*V, "merges");
    P.MatchNs = fieldU64(*V, "match_ns");
    P.InstantiateNs = fieldU64(*V, "inst_ns");
    P.Overflows = fieldU64(*V, "overflows");
    P.Skips = fieldU64(*V, "skips");
    P.FirstRound = static_cast<unsigned>(fieldU64(*V, "first_round"));
    P.LastRound = static_cast<unsigned>(fieldU64(*V, "last_round"));
    P.Runs = fieldU64(*V, "runs");
    if (!P.Runs)
      P.Runs = 1;
    std::lock_guard<std::mutex> Lock(Mu);
    mergeInto(Rows[Key->stringValue()][Ax->stringValue()], P);
  }
  return true;
}

bool ProfileLedger::save(const std::string &Path, std::string *Err) const {
  std::string Text = toJsonl();
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    if (Err)
      *Err = strFormat("cannot write '%s'", Path.c_str());
    return false;
  }
  std::fwrite(Text.data(), 1, Text.size(), Out);
  std::fclose(Out);
  return true;
}

void ProfileLedger::record(const std::string &GraphKey,
                           const std::string &AxiomId,
                           const AxiomProfile &P) {
  std::lock_guard<std::mutex> Lock(Mu);
  AxiomProfile &Row = Rows[GraphKey][AxiomId];
  if (Row.Runs >= DecayThreshold)
    halve(Row);
  mergeInto(Row, P);
}

bool ProfileLedger::lookup(const std::string &GraphKey,
                           const std::string &AxiomId,
                           AxiomProfile &Out) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto KeyIt = Rows.find(GraphKey);
  if (KeyIt == Rows.end())
    return false;
  auto AxIt = KeyIt->second.find(AxiomId);
  if (AxIt == KeyIt->second.end())
    return false;
  Out = AxIt->second;
  return true;
}

void ProfileLedger::decay(double Factor) {
  if (Factor < 0)
    Factor = 0;
  if (Factor >= 1)
    return;
  auto Scale = [Factor](uint64_t V) {
    return static_cast<uint64_t>(static_cast<double>(V) * Factor);
  };
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto KeyIt = Rows.begin(); KeyIt != Rows.end();) {
    for (auto AxIt = KeyIt->second.begin(); AxIt != KeyIt->second.end();) {
      AxiomProfile &Row = AxIt->second;
      Row.Raw = Scale(Row.Raw);
      Row.Instances = Scale(Row.Instances);
      Row.Merges = Scale(Row.Merges);
      Row.MatchNs = Scale(Row.MatchNs);
      Row.InstantiateNs = Scale(Row.InstantiateNs);
      Row.Overflows = Scale(Row.Overflows);
      Row.Skips = Scale(Row.Skips);
      Row.Runs = Scale(Row.Runs);
      if (Row.Runs == 0)
        AxIt = KeyIt->second.erase(AxIt);
      else
        ++AxIt;
    }
    if (KeyIt->second.empty())
      KeyIt = Rows.erase(KeyIt);
    else
      ++KeyIt;
  }
}

size_t ProfileLedger::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const auto &[Key, Axioms] : Rows)
    N += Axioms.size();
  return N;
}

std::vector<std::tuple<std::string, std::string, AxiomProfile>>
ProfileLedger::rows() const {
  std::vector<std::tuple<std::string, std::string, AxiomProfile>> Out;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const auto &[Key, Axioms] : Rows)
      for (const auto &[Id, P] : Axioms)
        Out.emplace_back(Key, Id, P);
  }
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) {
              if (std::get<0>(A) != std::get<0>(B))
                return std::get<0>(A) < std::get<0>(B);
              return std::get<1>(A) < std::get<1>(B);
            });
  return Out;
}

std::string ProfileLedger::toJsonl() const {
  std::string Out;
  for (const auto &[Key, Id, P] : rows()) {
    Out += strFormat(
        "{\"key\":\"%s\",\"axiom\":\"%s\",\"raw\":%llu,\"inst\":%llu,"
        "\"merges\":%llu,\"match_ns\":%llu,\"inst_ns\":%llu,"
        "\"overflows\":%llu,\"skips\":%llu,\"first_round\":%u,"
        "\"last_round\":%u,\"runs\":%llu}\n",
        jsonEscape(Key).c_str(), jsonEscape(Id).c_str(),
        static_cast<unsigned long long>(P.Raw),
        static_cast<unsigned long long>(P.Instances),
        static_cast<unsigned long long>(P.Merges),
        static_cast<unsigned long long>(P.MatchNs),
        static_cast<unsigned long long>(P.InstantiateNs),
        static_cast<unsigned long long>(P.Overflows),
        static_cast<unsigned long long>(P.Skips), P.FirstRound, P.LastRound,
        static_cast<unsigned long long>(P.Runs));
  }
  return Out;
}
