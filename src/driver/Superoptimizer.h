//===- driver/Superoptimizer.h - The Denali pipeline ------------*- C++ -*-===//
///
/// \file
/// The public facade: Figure 1's flow. A Superoptimizer owns the operator
/// and term tables, the EV6 description, and the built-in axiom files; it
/// compiles source modules (or single GMAs, or bare goal terms) to
/// near-optimal scheduled EV6 assembly, and can differentially verify the
/// result against the reference semantics on random inputs.
///
/// Typical use:
/// \code
///   denali::driver::Superoptimizer Opt;
///   auto Result = Opt.compileSource(SourceText);
///   for (auto &G : Result.Gmas)
///     std::puts(G.Search.Program.toString().c_str());
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_DRIVER_SUPEROPTIMIZER_H
#define DENALI_DRIVER_SUPEROPTIMIZER_H

#include "alpha/ISA.h"
#include "alpha/Simulator.h"
#include "machine/Machine.h"
#include "axioms/BuiltinAxioms.h"
#include "codegen/Search.h"
#include "gma/GMA.h"
#include "lang/Parser.h"
#include "match/Matcher.h"
#include "obs/Obs.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace denali {
namespace driver {

/// Pipeline knobs.
struct Options {
  /// Target machine backend, by registry name ("alpha", "rv64", ...; see
  /// machine::registeredMachines()). The architectural description of
  /// Figure 1 is pluggable: every later pipeline stage reads the chosen
  /// machine::MachineModel, never a hard-coded EV6 table.
  std::string MachineName = "alpha";
  /// Alpha-only variant knob (EV6 with clusters vs. the idealized
  /// SimpleQuad); ignored by other backends.
  alpha::Machine Model = alpha::Machine::EV6;
  match::MatchLimits Matching;
  codegen::SearchOptions Search;
  /// Universe-construction knobs (displacement folding range, and the
  /// verification harness's latency fault injection). The per-GMA \miss
  /// latency overrides are merged in by compileGMA.
  codegen::UniverseOptions Universe;
  /// Enforce guard-before-memory-operation ordering when a GMA has a
  /// nontrivial guard (paper, section 7).
  bool EnforceGuard = true;
  /// Provenance & explanation (src/explain). Explain switches the e-graph
  /// into provenance mode (proof forest + per-union justifications) and
  /// attaches a per-instruction derivation-chain explanation of the
  /// winning schedule to GmaResult (JSON + annotated listing).
  bool Explain = false;
  /// Dump the quiescent e-graph (DOT + JSON) into GmaResult.
  bool EGraphDump = false;
  /// Run the K-1 explain probe (SearchOptions::ExplainUnsat) and fold its
  /// clause-family attribution core into GmaResult::WhyUnsatText.
  bool WhyUnsat = false;
  /// Observability: when Obs.Enabled the constructor installs this as the
  /// process-wide obs configuration (tracing spans, metric counters, and
  /// leveled logging across the whole pipeline). Left untouched — the
  /// default — the constructor does not reconfigure the obs layer, so a
  /// library user's own obs::configure() call survives embedded
  /// Superoptimizer instances.
  obs::ObsConfig Obs;
  /// Saturation-profile ledger path (`--profile-ledger`): the constructor
  /// merges the file into the in-memory ledger, every saturation records
  /// its per-axiom attribution, and saveProfileLedger() writes the
  /// aggregate back. Empty = no persistence; the in-memory ledger still
  /// accumulates when MatchAdaptive is on, so a long-lived server warms
  /// its own scheduling within the process.
  std::string ProfileLedgerPath;
  /// History-driven saturation scheduling (`--match-adaptive`): seed
  /// per-axiom budgets and phase assignment from the ledger rows recorded
  /// under profileLedgerKey() instead of uniform budgets + blind doubling.
  /// Without matching history this is exactly the default scheduler. Any
  /// run that reaches quiescence reaches the identical closure (held-back
  /// work re-enters via the sit-out/phase machinery); a rounds-bounded
  /// run may stop at a different — equally valid — frontier, exactly as
  /// changing MatchBudget would.
  bool MatchAdaptive = false;
};

/// Fingerprint of every driver option that influences saturation and the
/// resulting SaturatedGma (machine model, match limits, universe knobs,
/// guard enforcement, provenance mode). The compile server's cache keys
/// (server::matchFingerprint) delegate here; the ledger's graph keys are
/// derived from it. MatchLimits::Threads is deliberately excluded — the
/// parallel matcher is bit-identical for any thread count.
std::string matchOptionsFingerprint(const Options &Opts);

/// The profile ledger's graph key for \p Opts: matchOptionsFingerprint
/// with the adaptive bit masked out, so the cold profiling runs that
/// build a ledger and the adaptive runs it later warms share one row set.
std::string profileLedgerKey(const Options &Opts);

/// The result of compiling one GMA.
struct GmaResult {
  gma::GMA Gma;
  match::MatchStats Matching;
  double MatchSeconds = 0;
  codegen::SearchResult Search;
  std::string Error; ///< Nonempty on failure.
  /// With Options::Explain: the derivation-chain explanation of the
  /// winning schedule, as JSON and as an annotated assembly listing.
  std::string ExplanationJson;
  std::string ExplanationListing;
  /// With Options::EGraphDump: the quiescent e-graph, as Graphviz DOT and
  /// as JSON.
  std::string EGraphDotText;
  std::string EGraphJsonText;
  /// With Options::WhyUnsat: the human-readable bottleneck report of the
  /// K-1 refutation (empty when no explain probe ran, e.g. when the
  /// minimal budget was feasible immediately).
  std::string WhyUnsatText;

  bool ok() const { return Error.empty() && Search.Found; }
};

/// The result of compiling a module.
struct CompileResult {
  std::string Error; ///< Nonempty on front-end failure.
  std::vector<GmaResult> Gmas;

  bool ok() const { return Error.empty(); }
};

/// A quiescent saturated e-graph for one GMA, ready for (repeated)
/// universe construction and budget search. Produced by saturateGMA(),
/// consumed by compileSaturated(). The graph is path-compressed on
/// return, so every subsequent const query is a pure read: one
/// SaturatedGma may serve many concurrent compileSaturated() calls (the
/// compile server's warm-graph memo relies on exactly this).
struct SaturatedGma {
  std::shared_ptr<const egraph::EGraph> Graph;
  /// Goal targets (names from the saturating GMA) with classes already
  /// canonicalized against the quiescent graph.
  std::vector<codegen::NamedGoal> Goals;
  std::optional<egraph::ClassId> GuardClass;
  /// Universe options with the per-\miss latency overrides merged in and
  /// re-canonicalized after saturation moved classes.
  codegen::UniverseOptions UOpts;
  match::MatchStats Matching;
  double MatchSeconds = 0;
  std::string Error; ///< Nonempty: contradictory \assume facts or an
                     ///< inconsistent saturation.

  bool ok() const { return Error.empty(); }
};

class Superoptimizer {
public:
  explicit Superoptimizer(Options Opts = Options());

  ir::Context &context() { return Ctx; }
  const ir::Context &context() const { return Ctx; }
  const machine::MachineModel &isa() const { return *Model; }
  Options &options() { return Opts; }
  const Options &options() const { return Opts; }

  /// Compiles Denali source text — either the prototype's parenthesized
  /// syntax (Figure 6) or the envisioned surface syntax (Figures 3/5; see
  /// lang/Surface.h): declares operators, collects program axioms,
  /// translates every procedure to GMAs, and superoptimizes each. This is
  /// the mutable front end: it interns new operators/axioms and must be
  /// serialized by callers that share one instance across threads.
  CompileResult compileSource(const std::string &Source);

  /// Superoptimizes one GMA (the crucial inner subroutine). Const and
  /// re-entrant: compiling touches no pipeline-wide mutable state (the
  /// term/operator tables are only read), so two threads may compile
  /// distinct pre-interned GMAs on one instance concurrently.
  GmaResult compileGMA(const gma::GMA &G) const;

  /// First half of compileGMA: seed the e-graph from \p G, saturate under
  /// the axioms, canonicalize the goal classes, and freeze the graph
  /// (path-compressed). The result can be compiled repeatedly — and
  /// concurrently — via compileSaturated().
  SaturatedGma saturateGMA(const gma::GMA &G) const;

  /// Second half of compileGMA: universe construction + the SAT budget
  /// ladder (+ dump/explain artifacts) against an already-saturated
  /// graph. \p G names the request being served: the GmaResult carries it,
  /// but the emitted program's input/output names come from the GMA that
  /// produced \p S (identical when called via compileGMA; the server
  /// renames them when serving an alpha-variant request from a warm
  /// graph).
  GmaResult compileSaturated(const SaturatedGma &S, const gma::GMA &G) const;

  /// Superoptimizes a bare vector of goal terms (library entry point for
  /// the examples): target names are paired with terms.
  GmaResult
  compileGoals(const std::string &Name,
               const std::vector<std::pair<std::string, ir::TermId>> &Goals)
      const;

  /// Registers extra axioms (program-specific facts). \returns false with
  /// \p ErrorOut on parse failure. Definitional axioms also extend the
  /// reference evaluator.
  bool addAxiomsText(const std::string &Text, std::string *ErrorOut);

  /// Differentially verifies a compiled GMA: for \p Trials random input
  /// environments, the simulated program's outputs must equal the GMA's
  /// reference evaluation. \returns an error description or std::nullopt.
  std::optional<std::string> verify(const GmaResult &R, unsigned Trials = 16,
                                    uint64_t Seed = 1) const;

  /// The evaluator definitions harvested from definitional axioms.
  const ir::Definitions &definitions() const { return Defs; }

  /// The in-memory saturation-profile ledger (thread-safe; see
  /// Options::ProfileLedgerPath). Const access pattern mirrors the
  /// compile paths: recording during const compiles is an observability
  /// side effect, not pipeline state.
  obs::ProfileLedger &profileLedger() const { return Ledger; }

  /// Writes the ledger back to Options::ProfileLedgerPath. \returns true
  /// when the path is empty (nothing to persist) or the write succeeded.
  bool saveProfileLedger(std::string *ErrorOut = nullptr) const;

private:
  Options Opts;
  ir::Context Ctx;
  std::unique_ptr<machine::MachineModel> Model;
  std::vector<match::Axiom> Axioms;
  ir::Definitions Defs;
  mutable obs::ProfileLedger Ledger;
};

} // namespace driver
} // namespace denali

#endif // DENALI_DRIVER_SUPEROPTIMIZER_H
