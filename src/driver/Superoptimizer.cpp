//===- driver/Superoptimizer.cpp ------------------------------------------===//

#include "driver/Superoptimizer.h"

#include "machine/RV64.h"
#include "support/Error.h"

#include "explain/Explain.h"
#include "lang/Surface.h"
#include "match/Elaborate.h"
#include "support/StringExtras.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <random>

using namespace denali;
using namespace denali::driver;
using denali::ir::Builtin;

Superoptimizer::Superoptimizer(Options O)
    : Opts(O), Axioms(axioms::loadBuiltinAxioms(Ctx)) {
  // Idempotent; makes the built-in backends constructible by name no
  // matter who instantiates the pipeline first.
  alpha::registerAlphaMachine();
  machine::registerRV64Machine();
  if (Opts.MachineName == "alpha") {
    // Direct construction keeps the EV6/SimpleQuad variant knob.
    Model = std::make_unique<alpha::ISA>(Ctx, Opts.Model);
  } else {
    std::string Err;
    Model = machine::createMachine(Opts.MachineName, Ctx, &Err);
    if (!Model)
      reportFatalError("Superoptimizer: " + Err);
  }
  if (O.Obs.Enabled)
    obs::configure(O.Obs);
  if (!Opts.ProfileLedgerPath.empty()) {
    std::string Err;
    if (!Ledger.load(Opts.ProfileLedgerPath, &Err))
      // A corrupt ledger costs only scheduling history; start cold rather
      // than failing the whole pipeline over an observability artifact.
      std::fprintf(stderr, "denali: profile ledger '%s': %s (starting cold)\n",
                   Opts.ProfileLedgerPath.c_str(), Err.c_str());
  }
}

std::string denali::driver::matchOptionsFingerprint(const Options &Opts) {
  const match::MatchLimits &M = Opts.Matching;
  std::string F = strFormat(
      "model=%d;guard=%d;prov=%d;rounds=%u;nodes=%zu;inst=%zu;budget=%llu;"
      "phased=%d;eager=%d;seen=%zu;adapt=%d;disp=%lld;lat=%d",
      static_cast<int>(Opts.Model), Opts.EnforceGuard ? 1 : 0,
      Opts.Explain ? 1 : 0, M.MaxRounds, M.MaxNodes, M.MaxInstancesPerRound,
      (unsigned long long)M.MatchBudget, M.Phased ? 1 : 0,
      M.EagerRebuild ? 1 : 0, M.SeenCap, Opts.MatchAdaptive ? 1 : 0,
      (long long)Opts.Universe.MaxDisp, Opts.Universe.TestLatencyDelta);
  // Global latency injections (a test-only knob, but soundness first):
  // include them sorted so the fingerprint is deterministic.
  if (!Opts.Universe.LoadLatencyByAddr.empty()) {
    std::vector<std::pair<egraph::ClassId, unsigned>> L(
        Opts.Universe.LoadLatencyByAddr.begin(),
        Opts.Universe.LoadLatencyByAddr.end());
    std::sort(L.begin(), L.end());
    for (auto &[C, Lat] : L)
      F += strFormat(";miss%u=%u", C, Lat);
  }
  return F;
}

std::string denali::driver::profileLedgerKey(const Options &Opts) {
  Options Masked = Opts;
  Masked.MatchAdaptive = false;
  return matchOptionsFingerprint(Masked);
}

bool Superoptimizer::saveProfileLedger(std::string *ErrorOut) const {
  if (Opts.ProfileLedgerPath.empty())
    return true;
  return Ledger.save(Opts.ProfileLedgerPath, ErrorOut);
}

bool Superoptimizer::addAxiomsText(const std::string &Text,
                                   std::string *ErrorOut) {
  auto Parsed = axioms::parseAxiomsText(Ctx, Text, ErrorOut);
  if (!Parsed)
    return false;
  for (match::Axiom &A : *Parsed) {
    if (auto Def = match::extractDefinition(Ctx, A))
      Defs.emplace(Def->first, Def->second);
    Axioms.push_back(std::move(A));
  }
  return true;
}

SaturatedGma Superoptimizer::saturateGMA(const gma::GMA &G) const {
  SaturatedGma S;
  auto Graph = std::make_shared<egraph::EGraph>(Ctx);
  if (Opts.Explain)
    Graph->enableProvenance();

  // Goal classes: guard + all new values + annotated miss addresses.
  for (size_t I = 0; I < G.Targets.size(); ++I) {
    egraph::ClassId C = Graph->addTerm(G.NewVals[I]);
    bool IsMemory =
        Ctx.Terms.node(G.NewVals[I]).Op == Ctx.Ops.builtin(Builtin::Store) ||
        G.Targets[I] == "M";
    S.Goals.push_back(codegen::NamedGoal{G.Targets[I], C, IsMemory});
  }
  if (G.Guard && Opts.EnforceGuard)
    S.GuardClass = Graph->addTerm(*G.Guard);
  codegen::UniverseOptions UOpts = Opts.Universe;
  for (ir::TermId Addr : G.MissAddrs) {
    egraph::ClassId C = Graph->addTerm(Addr);
    UOpts.LoadLatencyByAddr[Graph->find(C)] = Model->loadMissLatency();
  }
  // Trust facts: asserted before matching so the whole saturation can use
  // them (the \trust feature of section 2).
  for (const gma::GMA::Assumption &A : G.Assumptions) {
    egraph::ClassId L = Graph->addTerm(A.Lhs);
    egraph::ClassId R = Graph->addTerm(A.Rhs);
    if (A.IsEq)
      Graph->assertEqual(L, R);
    else
      Graph->assertDistinct(L, R);
  }
  if (Graph->isInconsistent()) {
    S.Error = "contradictory \\assume facts: " +
              Graph->inconsistencyMessage();
    S.Graph = std::move(Graph);
    return S;
  }

  // Matching phase (Figure 1, left box).
  Timer T;
  match::Matcher M(Axioms);
  for (match::Elaborator &E : match::standardElaborators())
    M.addElaborator(std::move(E));
  // Profiling loop: adaptive saturation reads the ledger's history for
  // this options fingerprint, and every profiled run records back into
  // it — so a persistent ledger aggregates across processes and a
  // long-lived server warms its own scheduling request over request.
  match::MatchLimits ML = Opts.Matching;
  const bool ProfileRuns =
      Opts.MatchAdaptive || !Opts.ProfileLedgerPath.empty();
  std::string LedgerKey;
  if (ProfileRuns)
    LedgerKey = profileLedgerKey(Opts);
  if (Opts.MatchAdaptive) {
    ML.Adaptive = true;
    ML.Ledger = &Ledger;
    ML.LedgerKey = LedgerKey;
  }
  S.Matching = M.saturate(*Graph, ML);
  S.MatchSeconds = T.seconds();
  if (ProfileRuns)
    match::recordMatchProfile(Ledger, LedgerKey, Axioms, S.Matching);
  obs::logf(2, "gma %s: saturation %u rounds, %zu nodes / %zu classes "
               "(%.3fs)",
            G.Name.c_str(), S.Matching.Rounds, S.Matching.FinalNodes,
            S.Matching.FinalClasses, S.MatchSeconds);
  if (Graph->isInconsistent()) {
    S.Error = "E-graph inconsistent (unsound axiom?): " +
              Graph->inconsistencyMessage();
    S.Graph = std::move(Graph);
    return S;
  }
  // Miss annotations may have moved classes during saturation.
  S.UOpts = Opts.Universe;
  S.UOpts.LoadLatencyByAddr.clear();
  for (auto &[C, L] : UOpts.LoadLatencyByAddr)
    S.UOpts.LoadLatencyByAddr[Graph->find(C)] = L;

  // Canonicalize goal classes after merging.
  for (codegen::NamedGoal &Goal : S.Goals)
    Goal.Class = Graph->find(Goal.Class);
  if (S.GuardClass)
    S.GuardClass = Graph->find(*S.GuardClass);

  // Freeze: fully compress every union-find path so subsequent const
  // queries perform no writes — the property concurrent readers (the
  // portfolio search and the compile server's warm-graph serving) rely
  // on.
  Graph->compressPaths();
  S.Graph = std::move(Graph);
  return S;
}

GmaResult Superoptimizer::compileSaturated(const SaturatedGma &S,
                                           const gma::GMA &G) const {
  // Counted here rather than in compileGMA so every compile path (direct,
  // server cold tier, warm-graph replay) lands in the per-backend counter.
  obs::Registry::global().counter("driver.compile." + Opts.MachineName).add();
  GmaResult Result;
  Result.Gma = G;
  Result.Matching = S.Matching;
  Result.MatchSeconds = S.MatchSeconds;
  if (!S.Error.empty()) {
    Result.Error = S.Error;
    return Result;
  }
  const egraph::EGraph &Graph = *S.Graph;
  std::vector<egraph::ClassId> Roots;
  for (const codegen::NamedGoal &Goal : S.Goals)
    Roots.push_back(Goal.Class);
  if (S.GuardClass)
    Roots.push_back(*S.GuardClass);

  // The graph is quiescent; dump it before the phases that can fail, so a
  // universe/search failure still leaves the inspectors.
  if (Opts.EGraphDump) {
    obs::ObsSpan DSpan("explain.egraph_dump");
    Result.EGraphDotText = explain::egraphToDot(Graph);
    Result.EGraphJsonText = explain::egraphToJson(Graph);
    if (DSpan.active())
      DSpan.arg("dot_bytes",
                static_cast<uint64_t>(Result.EGraphDotText.size()));
  }

  // Constraint generation + satisfiability search (Figure 1, right boxes).
  codegen::Universe U;
  std::string Err;
  {
    obs::ObsSpan USpan("universe.build");
    if (!U.build(Graph, *Model, Roots, S.UOpts, &Err)) {
      Result.Error = Err;
      return Result;
    }
    if (USpan.active())
      USpan.arg("terms", static_cast<uint64_t>(U.terms().size()))
          .arg("classes", static_cast<uint64_t>(U.neededClasses().size()));
  }
  codegen::SearchOptions SOpts = Opts.Search;
  if (S.GuardClass)
    SOpts.Encoding.GuardClass = *S.GuardClass;
  if (Opts.WhyUnsat)
    SOpts.ExplainUnsat = true;
  Result.Search =
      codegen::searchBudgets(Graph, *Model, U, S.Goals, SOpts, G.Name);
  if (!Result.Search.Found)
    Result.Error = Result.Search.Error;
  if (Opts.WhyUnsat)
    Result.WhyUnsatText = explain::whyUnsatReport(Result.Search, U, S.Goals);
  if (Opts.Explain && Result.Search.Found) {
    obs::ObsSpan ESpan("explain.program");
    explain::ProgramExplanation E =
        explain::explainProgram(Graph, U, Axioms, Result.Search.Program);
    Result.ExplanationJson = explain::explanationToJson(E);
    Result.ExplanationListing = explain::explanationToListing(E);
    if (ESpan.active())
      ESpan.arg("instructions", static_cast<uint64_t>(E.Instrs.size()));
  }
  obs::logf(1, "gma %s: %s (%u cycles, %zu probes)", G.Name.c_str(),
            Result.ok() ? "compiled" : "failed", Result.Search.Cycles,
            Result.Search.Probes.size());
  return Result;
}

GmaResult Superoptimizer::compileGMA(const gma::GMA &G) const {
  obs::ObsSpan Span("gma.compile");
  // The machine label lets reports split compile latency per backend
  // (alpha vs rv64) from one shared trace or metrics capture.
  if (Span.active())
    Span.arg("name", G.Name.c_str())
        .arg("machine", Opts.MachineName.c_str());
  return compileSaturated(saturateGMA(G), G);
}

GmaResult Superoptimizer::compileGoals(
    const std::string &Name,
    const std::vector<std::pair<std::string, ir::TermId>> &Goals) const {
  gma::GMA G;
  G.Name = Name;
  for (const auto &[Target, Term] : Goals) {
    G.Targets.push_back(Target);
    G.NewVals.push_back(Term);
  }
  return compileGMA(G);
}

CompileResult Superoptimizer::compileSource(const std::string &Source) {
  CompileResult Result;
  std::string Err;
  std::optional<lang::Module> M;
  {
    obs::ObsSpan Span("lang.parse");
    M = lang::parseAnyModule(Source, &Err);
    if (Span.active())
      Span.arg("bytes", static_cast<uint64_t>(Source.size()))
          .arg("ok", M ? "yes" : "no");
  }
  if (!M) {
    Result.Error = Err;
    return Result;
  }
  for (const lang::OpDecl &D : M->OpDecls)
    Ctx.Ops.declareOp(D.Name, static_cast<int>(D.Arity));
  for (const sexpr::SExpr &AxForm : M->Axioms) {
    std::optional<match::Axiom> A = match::parseAxiom(Ctx, AxForm, &Err);
    if (!A) {
      Result.Error = "axiom: " + Err;
      return Result;
    }
    if (auto Def = match::extractDefinition(Ctx, *A))
      Defs.emplace(Def->first, Def->second);
    Axioms.push_back(std::move(*A));
  }
  for (const lang::Proc &P : M->Procs) {
    std::optional<std::vector<gma::GMA>> Gmas;
    {
      obs::ObsSpan Span("gma.translate");
      Gmas = gma::translateProc(Ctx, P, &Err);
      if (Span.active())
        Span.arg("proc", P.Name.c_str())
            .arg("gmas",
                 static_cast<uint64_t>(Gmas ? Gmas->size() : 0));
    }
    if (!Gmas) {
      Result.Error = Err;
      return Result;
    }
    for (const gma::GMA &G : *Gmas)
      Result.Gmas.push_back(compileGMA(G));
  }
  return Result;
}

std::optional<std::string> Superoptimizer::verify(const GmaResult &R,
                                                  unsigned Trials,
                                                  uint64_t Seed) const {
  if (!R.ok())
    return "GMA was not compiled successfully";
  const alpha::Program &P = R.Search.Program;

  machine::TimingReport TR = machine::validateTiming(*Model, P);
  if (!TR.Ok)
    return "timing: " + TR.Error;

  std::mt19937_64 Rng(Seed * 0x9e3779b97f4a7c15ULL + 0xb5297a4d);
  std::vector<ir::OpId> Inputs = gma::gmaInputs(Ctx, R.Gma);
  for (unsigned Trial = 0; Trial < Trials; ++Trial) {
    ir::Env E;
    std::unordered_map<std::string, ir::Value> SimInputs;
    for (ir::OpId In : Inputs) {
      const std::string &Name = Ctx.Ops.info(In).Name;
      // Memory inputs are those the program declares as memory.
      bool IsMemory = false;
      for (const alpha::ProgramInput &PI : P.Inputs)
        if (PI.Name == Name)
          IsMemory = PI.IsMemory;
      ir::Value V = IsMemory ? ir::Value::makeArray(Rng())
                             : ir::Value::makeInt(Rng());
      E[In] = V;
      SimInputs[Name] = V;
    }
    // Some program inputs may be unused by the reference terms (e.g. the
    // memory of an unannotated path); bind them too.
    for (const alpha::ProgramInput &PI : P.Inputs)
      if (!SimInputs.count(PI.Name)) {
        ir::Value V = PI.IsMemory ? ir::Value::makeArray(Rng())
                                  : ir::Value::makeInt(Rng());
        SimInputs[PI.Name] = V;
        // Program inputs come from terms in the e-graph, so the variable
        // exists in the (read-only) operator table; bind it if so, and
        // skip the binding otherwise — an unknown name cannot appear in
        // the reference terms either.
        if (std::optional<ir::OpId> Op = Ctx.Ops.lookup(PI.Name))
          E[*Op] = V;
      }
    // Honor \assume facts of the simple `var = <evaluable>` shape by
    // forcing the variable's value (the generated code is entitled to rely
    // on them). Random inputs satisfy `neq` facts with overwhelming
    // probability; other equalities are the programmer's risk.
    for (const gma::GMA::Assumption &A : R.Gma.Assumptions) {
      if (!A.IsEq)
        continue;
      for (auto [VarSide, ValSide] : {std::pair{A.Lhs, A.Rhs},
                                      std::pair{A.Rhs, A.Lhs}}) {
        const ir::TermNode &N = Ctx.Terms.node(VarSide);
        if (!Ctx.Ops.isVariable(N.Op))
          continue;
        if (auto V = ir::evalTerm(Ctx.Terms, ValSide, E, &Defs)) {
          E[N.Op] = *V;
          SimInputs[Ctx.Ops.info(N.Op).Name] = *V;
          break;
        }
      }
    }

    std::string Err;
    auto Want = gma::evalGMA(Ctx, R.Gma, E, &Defs, &Err);
    if (!Want)
      return "reference evaluation failed: " + Err;
    alpha::RunResult Run = alpha::runProgram(Ctx, P, SimInputs);
    if (!Run.Ok)
      return std::string(Run.TheTrap ? "simulation trap: "
                                     : "simulation failed: ") +
             Run.Error;
    // Replay loads/stores against one real shared memory: catches
    // discipline bugs the value semantics cannot.
    if (auto MemErr = alpha::validateMemoryDiscipline(Ctx, P, SimInputs))
      return "memory discipline: " + *MemErr;
    for (const auto &[Target, WantV] : *Want) {
      auto It = Run.Outputs.find(Target);
      if (It == Run.Outputs.end())
        return strFormat("output '%s' missing from program",
                         Target.c_str());
      if (!It->second.equals(WantV))
        return strFormat(
            "trial %u: output '%s' mismatch: program %s, reference %s",
            Trial, Target.c_str(), It->second.toString().c_str(),
            WantV.toString().c_str());
    }
  }
  return std::nullopt;
}
