//===- egraph/UnionFind.h - Union-find over dense ids -----------*- C++ -*-===//
///
/// \file
/// Union-find with path compression and union by size, over dense uint32
/// ids. Used by the E-graph's equivalence relation on classes.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_EGRAPH_UNIONFIND_H
#define DENALI_EGRAPH_UNIONFIND_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace denali {
namespace egraph {

class UnionFind {
public:
  /// Creates a fresh singleton set and returns its id.
  uint32_t makeSet() {
    uint32_t Id = static_cast<uint32_t>(Parent.size());
    Parent.push_back(Id);
    Size.push_back(1);
    return Id;
  }

  uint32_t find(uint32_t X) const {
    assert(X < Parent.size() && "bad id");
    while (Parent[X] != X) {
      // Path halving (works with a const table since we only ever shortcut
      // to an ancestor; Parent is mutable). The write is skipped when it
      // would not shorten the path, so after compressAll() a find() is
      // purely a read — the property concurrent readers rely on.
      uint32_t P = Parent[X];
      uint32_t GP = Parent[P];
      if (GP != P)
        Parent[X] = GP;
      X = GP;
    }
    return X;
  }

  /// Fully compresses every path: afterwards (and until the next unite)
  /// find() performs no writes, making concurrent find() calls from many
  /// threads safe. The portfolio budget search runs this before handing a
  /// const E-graph to worker threads.
  void compressAll() const {
    for (size_t I = 0; I < Parent.size(); ++I)
      Parent[I] = find(static_cast<uint32_t>(I));
  }

  /// Unions the sets of \p A and \p B; \returns the surviving root
  /// (the larger set's root).
  uint32_t unite(uint32_t A, uint32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return A;
    if (Size[A] < Size[B])
      std::swap(A, B);
    Parent[B] = A;
    Size[A] += Size[B];
    return A;
  }

  bool sameSet(uint32_t A, uint32_t B) const { return find(A) == find(B); }
  size_t size() const { return Parent.size(); }

private:
  mutable std::vector<uint32_t> Parent;
  std::vector<uint32_t> Size;
};

} // namespace egraph
} // namespace denali

#endif // DENALI_EGRAPH_UNIONFIND_H
