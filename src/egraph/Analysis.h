//===- egraph/Analysis.h - E-graph analyses ---------------------*- C++ -*-===//
///
/// \file
/// Read-only analyses over a (saturated) E-graph:
///
///  * countComputations — how many distinct computation trees the graph
///    represents for a class (the paper's "more than a hundred different
///    ways of computing a+b+c+d+e"); cycle-avoiding, capped;
///  * evaluateClasses — assigns every class a value by bottom-up
///    evaluation under an environment, reporting soundness violations
///    (a class whose member nodes disagree proves an unsound axiom).
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_EGRAPH_ANALYSIS_H
#define DENALI_EGRAPH_ANALYSIS_H

#include "egraph/EGraph.h"
#include "ir/Eval.h"
#include "ir/Value.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace denali {
namespace egraph {

/// Counts distinct computation trees for \p Root, treating each choice of
/// node within a class as a distinct way. Trees may not revisit a class on
/// one path (self-referential identities like x+0 = x would otherwise give
/// infinitely many). Saturates at \p Cap.
uint64_t countComputations(const EGraph &G, ClassId Root,
                           uint64_t Cap = 1000000);

/// The result of evaluating all classes under an environment.
struct ClassValuation {
  /// Values per canonical class (classes whose value is underdetermined —
  /// e.g. applications of declared ops without definitions — are absent).
  std::unordered_map<ClassId, ir::Value> Values;
  /// Human-readable descriptions of soundness violations (node evaluated
  /// to a value different from its class's established value).
  std::vector<std::string> Violations;

  bool sound() const { return Violations.empty(); }
};

/// Evaluates every class of \p G bottom-up under \p Bindings (variable
/// operator -> value). \p Defs supplies expansions for declared operators.
ClassValuation evaluateClasses(const EGraph &G, const ir::Env &Bindings,
                               const ir::Definitions *Defs = nullptr);

/// Renders \p G as Graphviz dot (classes as clusters of their nodes,
/// edges from node operands to child classes) — the pictures of Figure 2.
std::string toGraphviz(const EGraph &G);

} // namespace egraph
} // namespace denali

#endif // DENALI_EGRAPH_ANALYSIS_H
