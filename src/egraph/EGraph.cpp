//===- egraph/EGraph.cpp --------------------------------------------------===//

#include "egraph/EGraph.h"

#include "ir/Eval.h"
#include "support/Error.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cassert>

using namespace denali;
using namespace denali::egraph;
using denali::ir::Builtin;

EGraph::EGraph(const ir::Context &Ctx, bool FoldConstants)
    : Ctx(Ctx), FoldConstants(FoldConstants) {}

EGraph::Key EGraph::canonicalKey(const ENode &N) const {
  Key K;
  K.Op = N.Op;
  K.ConstVal = N.ConstVal;
  K.Children.reserve(N.Children.size());
  for (ClassId C : N.Children)
    K.Children.push_back(UF.find(C));
  return K;
}

ENodeId EGraph::insertNode(ir::OpId Op, std::vector<ClassId> Children,
                           uint64_t ConstVal, bool &WasNew) {
  for (ClassId &C : Children)
    C = UF.find(C);
  Key K{Op, Children, ConstVal};
  auto It = Hashcons.find(K);
  if (It != Hashcons.end()) {
    WasNew = false;
    return It->second;
  }
  WasNew = true;
  ENodeId NId = static_cast<ENodeId>(Nodes.size());
  ClassId CId = UF.makeSet();
  assert(CId == ClassStates.size() && "class table out of sync");
  ClassStates.emplace_back();
  Nodes.push_back(ENode{Op, Children, ConstVal, CId, true});
  ++LiveNodeCount;
  Hashcons.emplace(std::move(K), NId);
  ClassStates[CId].Members.push_back(NId);
  if (Ctx.Ops.isConst(Op))
    ClassStates[CId].Constant = ConstVal;
  for (ClassId C : Children)
    ClassStates[C].Parents.push_back(NId);
  OpIndex[Op].push_back(NId);
  if (FoldConstants)
    FoldQueue.push_back(NId);
  ++Version;
  return NId;
}

ClassId EGraph::addNode(ir::OpId Op, const std::vector<ClassId> &Children) {
  assert(static_cast<size_t>(Ctx.Ops.info(Op).Arity) == Children.size() &&
         "arity mismatch");
  bool WasNew = false;
  ENodeId N = insertNode(Op, Children, 0, WasNew);
  ClassId C = classOf(N);
  if (WasNew && !InRebuild && Mode == RebuildMode::Eager)
    rebuild();
  return UF.find(C);
}

ClassId EGraph::addConst(uint64_t Value) {
  bool WasNew = false;
  ENodeId N =
      insertNode(Ctx.Ops.builtin(Builtin::Const), {}, Value, WasNew);
  return classOf(N);
}

ClassId EGraph::addTerm(ir::TermId Term) {
  std::unordered_map<ir::TermId, ClassId> Memo;
  std::vector<std::pair<ir::TermId, bool>> Stack;
  Stack.push_back({Term, false});
  while (!Stack.empty()) {
    auto [Id, Expanded] = Stack.back();
    Stack.pop_back();
    if (Memo.count(Id))
      continue;
    const ir::TermNode &N = Ctx.Terms.node(Id);
    if (!Expanded) {
      if (Ctx.Ops.isConst(N.Op)) {
        Memo[Id] = addConst(N.ConstVal);
        continue;
      }
      if (N.Children.empty()) {
        Memo[Id] = addNode(N.Op, {});
        continue;
      }
      Stack.push_back({Id, true});
      for (ir::TermId C : N.Children)
        Stack.push_back({C, false});
      continue;
    }
    std::vector<ClassId> Children;
    Children.reserve(N.Children.size());
    for (ir::TermId C : N.Children)
      Children.push_back(Memo.at(C));
    Memo[Id] = addNode(N.Op, Children);
  }
  return UF.find(Memo.at(Term));
}

void EGraph::conflict(const std::string &Msg) {
  if (Inconsistent)
    return;
  Inconsistent = true;
  ConflictMsg = Msg;
}

void EGraph::mergeInto(ClassId Root, ClassId Gone) {
  ClassState &RS = ClassStates[Root];
  ClassState &GS = ClassStates[Gone];
  RS.Members.insert(RS.Members.end(), GS.Members.begin(), GS.Members.end());
  GS.Members.clear();
  bool ConstantArrived = false;
  if (GS.Constant) {
    if (RS.Constant) {
      if (*RS.Constant != *GS.Constant)
        conflict(strFormat("constant conflict: %llu vs %llu merged",
                           static_cast<unsigned long long>(*RS.Constant),
                           static_cast<unsigned long long>(*GS.Constant)));
    } else {
      RS.Constant = GS.Constant;
      ConstantArrived = true;
    }
  }
  RS.DistinctFrom.insert(RS.DistinctFrom.end(), GS.DistinctFrom.begin(),
                         GS.DistinctFrom.end());
  GS.DistinctFrom.clear();
  // A newly known constant can enable folds in every parent.
  if (FoldConstants && ConstantArrived)
    for (ENodeId P : RS.Parents)
      FoldQueue.push_back(P);
  if (FoldConstants && ConstantArrived)
    for (ENodeId P : GS.Parents)
      FoldQueue.push_back(P);
  RS.Parents.insert(RS.Parents.end(), GS.Parents.begin(), GS.Parents.end());
  GS.Parents.clear();
}

void EGraph::proofLink(ClassId A, ClassId B, const Justification &J) {
  // Proof-forest nodes are the original (pre-find) class ids; an edge
  // records which concrete assertion united two trees. Re-root A's tree by
  // reversing the parent path from A, then hang A under B.
  if (ProofEdges.size() < ClassStates.size())
    ProofEdges.resize(ClassStates.size());
  ClassId Cur = A;
  ProofEdge Carry; // Edge that pointed *at* Cur before reversal.
  bool HaveCarry = false;
  while (true) {
    ProofEdge Next = ProofEdges[Cur];
    if (HaveCarry) {
      // Reverse: Cur's new parent is the previous child; the edge keeps its
      // justification but flips orientation.
      ProofEdges[Cur].Parent = Carry.Parent;
      ProofEdges[Cur].J = Carry.J;
      ProofEdges[Cur].SelfIsA = !Carry.SelfIsA;
    }
    if (Next.Parent == NoProofParent)
      break;
    Carry = Next;
    Carry.Parent = Cur; // From the old parent's view, Cur is the new parent.
    HaveCarry = true;
    Cur = Next.Parent;
  }
  // A is now the root of its tree; link it under B.
  ProofEdges[A].Parent = B;
  ProofEdges[A].J = J;
  ProofEdges[A].SelfIsA = true;
}

std::vector<ProofStep> EGraph::explain(ClassId A, ClassId B) const {
  std::vector<ProofStep> Out;
  if (!Provenance || A == B || !UF.sameSet(A, B))
    return Out;
  if (A >= ProofEdges.size() || B >= ProofEdges.size())
    return Out;
  // Ancestor paths to the forest root, then the lowest common ancestor.
  auto Ancestors = [&](ClassId C) {
    std::vector<ClassId> Path{C};
    while (ProofEdges[Path.back()].Parent != NoProofParent)
      Path.push_back(ProofEdges[Path.back()].Parent);
    return Path;
  };
  std::vector<ClassId> PathA = Ancestors(A);
  std::vector<ClassId> PathB = Ancestors(B);
  // Trim the common suffix; the last shared element is the LCA.
  size_t IA = PathA.size(), IB = PathB.size();
  while (IA > 0 && IB > 0 && PathA[IA - 1] == PathB[IB - 1]) {
    --IA;
    --IB;
  }
  // A and B are in the same union-find set, so the forest connects them.
  assert(IA < PathA.size() && PathA[IA] == PathB[IB] &&
         "proof forest disconnected for equal classes");
  ClassId Lca = PathA[IA];
  (void)Lca;
  // Steps up from A to the LCA: each edge (Child -> Parent).
  for (size_t I = 0; I < IA; ++I) {
    const ProofEdge &E = ProofEdges[PathA[I]];
    Out.push_back(ProofStep{PathA[I], E.Parent, E.J, E.SelfIsA});
  }
  // Steps down from the LCA to B: reverse of B's upward path.
  for (size_t I = IB; I-- > 0;) {
    const ProofEdge &E = ProofEdges[PathB[I]];
    Out.push_back(ProofStep{E.Parent, PathB[I], E.J, !E.SelfIsA});
  }
  return Out;
}

bool EGraph::mergeClasses(ClassId A, ClassId B, const Justification &J) {
  ClassId OrigA = A, OrigB = B;
  A = UF.find(A);
  B = UF.find(B);
  if (A == B)
    return false;
  if (areDistinct(A, B)) {
    conflict("merge of classes constrained distinct");
    return false;
  }
  if (Provenance)
    proofLink(OrigA, OrigB, J);
  ClassId Root = UF.unite(A, B);
  ClassId Gone = Root == A ? B : A;
  mergeInto(Root, Gone);
  Worklist.push_back(Root);
  ++Version;
  ++Stats.Merges;
  if (J.TheKind == Justification::Kind::Congruence)
    ++Stats.CongruenceMerges;
  else if (J.TheKind == Justification::Kind::ConstantFold)
    ++Stats.ConstantFolds;
  return true;
}

bool EGraph::assertEqual(ClassId A, ClassId B) {
  return assertEqual(A, B, Justification());
}

bool EGraph::assertEqual(ClassId A, ClassId B, const Justification &J) {
  bool Changed = mergeClasses(A, B, J);
  if (Changed && !InRebuild && Mode == RebuildMode::Eager)
    rebuild();
  return Changed;
}

bool EGraph::assertDistinct(ClassId A, ClassId B) {
  A = UF.find(A);
  B = UF.find(B);
  if (A == B) {
    conflict("distinctness asserted within one class");
    return false;
  }
  if (areDistinct(A, B))
    return false;
  ClassStates[A].DistinctFrom.push_back(B);
  ClassStates[B].DistinctFrom.push_back(A);
  ++Version;
  if (!InRebuild && Mode == RebuildMode::Eager)
    rebuild(); // Distinctness can make clause literals untenable.
  return true;
}

void EGraph::addClause(std::vector<Literal> Lits) {
  Clauses.push_back(Clause{std::move(Lits), false});
  if (!InRebuild && Mode == RebuildMode::Eager)
    rebuild();
}

void EGraph::setRebuildMode(RebuildMode M) {
  if (Mode == M)
    return;
  Mode = M;
  // Eager promises a closed graph after every mutation; honor it now.
  if (Mode == RebuildMode::Eager && !InRebuild)
    rebuild();
}

bool EGraph::areDistinct(ClassId A, ClassId B) const {
  A = UF.find(A);
  B = UF.find(B);
  if (A == B)
    return false;
  const std::optional<uint64_t> &CA = ClassStates[A].Constant;
  const std::optional<uint64_t> &CB = ClassStates[B].Constant;
  if (CA && CB && *CA != *CB)
    return true;
  const std::vector<ClassId> &ListA = ClassStates[A].DistinctFrom;
  const std::vector<ClassId> &ListB = ClassStates[B].DistinctFrom;
  const std::vector<ClassId> &Shorter =
      ListA.size() <= ListB.size() ? ListA : ListB;
  ClassId Other = ListA.size() <= ListB.size() ? B : A;
  for (ClassId D : Shorter)
    if (UF.find(D) == Other)
      return true;
  return false;
}

std::optional<uint64_t> EGraph::classConstant(ClassId C) const {
  return ClassStates[UF.find(C)].Constant;
}

std::vector<ENodeId> EGraph::classNodes(ClassId C) const {
  std::vector<ENodeId> Out;
  for (ENodeId N : ClassStates[UF.find(C)].Members)
    if (Nodes[N].Alive)
      Out.push_back(N);
  return Out;
}

std::vector<ClassId> EGraph::canonicalClasses() const {
  std::vector<ClassId> Out;
  for (ClassId C = 0; C < ClassStates.size(); ++C)
    if (UF.find(C) == C && !ClassStates[C].Members.empty())
      Out.push_back(C);
  return Out;
}

const std::vector<ENodeId> &EGraph::nodesWithOp(ir::OpId Op) const {
  auto It = OpIndex.find(Op);
  if (It == OpIndex.end())
    return EmptyNodeList;
  return It->second;
}

size_t EGraph::numClasses() const {
  size_t Count = 0;
  for (ClassId C = 0; C < ClassStates.size(); ++C)
    if (UF.find(C) == C && !ClassStates[C].Members.empty())
      ++Count;
  return Count;
}

void EGraph::repair(ClassId C) {
  ++Stats.Repairs;
  // Take ownership of the parent list; surviving entries are re-added.
  std::vector<ENodeId> Parents;
  Parents.swap(ClassStates[C].Parents);
  std::unordered_set<ENodeId> Seen;
  std::vector<ENodeId> NewParents;
  for (ENodeId NId : Parents) {
    if (!Seen.insert(NId).second)
      continue;
    ENode &N = Nodes[NId];
    if (!N.Alive)
      continue;
    // Erase the stale hashcons entry (keyed by the stored children).
    Key OldKey{N.Op, N.Children, N.ConstVal};
    auto OldIt = Hashcons.find(OldKey);
    if (OldIt != Hashcons.end() && OldIt->second == NId)
      Hashcons.erase(OldIt);
    // Re-canonicalize and reinsert.
    bool Changed = false;
    for (ClassId &Child : N.Children) {
      ClassId Canon = UF.find(Child);
      Changed |= Canon != Child;
      Child = Canon;
    }
    Key NewKey{N.Op, N.Children, N.ConstVal};
    auto It = Hashcons.find(NewKey);
    if (It != Hashcons.end() && It->second != NId) {
      // Congruent twin: merge classes, retire this node.
      mergeClasses(classOf(NId), classOf(It->second),
                   Justification::congruence(It->second, NId));
      N.Alive = false;
      --LiveNodeCount;
    } else {
      Hashcons[NewKey] = NId;
      if (Changed && FoldConstants)
        FoldQueue.push_back(NId);
      NewParents.push_back(NId);
    }
  }
  ClassStates[C].Parents.insert(ClassStates[C].Parents.end(),
                                NewParents.begin(), NewParents.end());
}

void EGraph::processFoldQueue() {
  while (!FoldQueue.empty()) {
    ENodeId NId = FoldQueue.front();
    FoldQueue.pop_front();
    const ENode &N = Nodes[NId];
    if (!N.Alive)
      continue;
    const ir::OpInfo &Info = Ctx.Ops.info(N.Op);
    if (Info.Kind != ir::OpKind::Builtin)
      continue;
    Builtin B = Info.BuiltinOp;
    if (B == Builtin::Const || B == Builtin::Select || B == Builtin::Store ||
        N.Children.empty())
      continue;
    if (classConstant(classOf(NId)))
      continue; // Already known constant.
    std::vector<uint64_t> Args;
    Args.reserve(N.Children.size());
    bool AllConst = true;
    for (ClassId C : N.Children) {
      std::optional<uint64_t> V = classConstant(C);
      if (!V) {
        AllConst = false;
        break;
      }
      Args.push_back(*V);
    }
    if (!AllConst)
      continue;
    uint64_t Val = ir::evalBuiltinInt(B, Args);
    ClassId ConstClass = addConst(Val);
    mergeClasses(classOf(NId), ConstClass,
                 Justification::constantFold(NId));
  }
}

bool EGraph::literalSatisfied(const Literal &L) const {
  if (L.TheKind == Literal::Kind::Eq)
    return sameClass(L.A, L.B);
  return areDistinct(L.A, L.B);
}

bool EGraph::literalUntenable(const Literal &L) const {
  if (L.TheKind == Literal::Kind::Eq)
    return areDistinct(L.A, L.B);
  return sameClass(L.A, L.B);
}

void EGraph::assertLiteral(const Literal &L) {
  if (L.TheKind == Literal::Kind::Eq)
    mergeClasses(L.A, L.B, Justification::clauseUnit());
  else
    assertDistinct(L.A, L.B);
}

void EGraph::processClauses() {
  for (Clause &C : Clauses) {
    if (C.Done)
      continue;
    bool Satisfied = false;
    for (const Literal &L : C.Lits)
      if (literalSatisfied(L)) {
        Satisfied = true;
        break;
      }
    if (Satisfied) {
      C.Done = true;
      continue;
    }
    // Delete untenable literals (paper, section 5).
    C.Lits.erase(std::remove_if(C.Lits.begin(), C.Lits.end(),
                                [&](const Literal &L) {
                                  return literalUntenable(L);
                                }),
                 C.Lits.end());
    if (C.Lits.empty()) {
      conflict("clause with all literals untenable");
      C.Done = true;
      continue;
    }
    if (C.Lits.size() == 1) {
      assertLiteral(C.Lits.front());
      C.Done = true;
    }
  }
}

void EGraph::rebuild() {
  assert(!InRebuild && "reentrant rebuild");
  if (rebuildPending())
    ++Stats.Rebuilds;
  InRebuild = true;
  // Closure is a fixpoint loop over three explicit queues (dirty-class
  // worklist, fold queue, clause scan) — never recursion — so 100x stress
  // graphs cannot overflow the native stack however deep a merge cascade
  // runs.
  for (;;) {
    if (!Worklist.empty()) {
      std::vector<ClassId> Todo;
      Todo.swap(Worklist);
      std::sort(Todo.begin(), Todo.end());
      Todo.erase(std::unique(Todo.begin(), Todo.end()), Todo.end());
      for (ClassId C : Todo)
        repair(UF.find(C));
      continue;
    }
    if (FoldConstants && !FoldQueue.empty()) {
      processFoldQueue();
      continue;
    }
    uint64_t Before = Version;
    processClauses();
    if (Version == Before && Worklist.empty() && FoldQueue.empty())
      break;
  }
  InRebuild = false;
}

std::string EGraph::nodeToString(ENodeId NId) const {
  const ENode &N = Nodes[NId];
  const ir::OpInfo &Info = Ctx.Ops.info(N.Op);
  if (Ctx.Ops.isConst(N.Op))
    return formatConstant(N.ConstVal);
  if (N.Children.empty())
    return Info.Name;
  std::string Out = "(" + Info.Name;
  for (ClassId C : N.Children)
    Out += strFormat(" c%u", UF.find(C));
  Out += ')';
  return Out;
}
