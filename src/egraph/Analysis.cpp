//===- egraph/Analysis.cpp ------------------------------------------------===//

#include "egraph/Analysis.h"

#include "support/StringExtras.h"

#include <unordered_set>

using namespace denali;
using namespace denali::egraph;
using denali::ir::Builtin;

namespace {

class ComputationCounter {
public:
  ComputationCounter(const EGraph &G, uint64_t Cap) : G(G), Cap(Cap) {}

  uint64_t countClass(ClassId C) {
    C = G.find(C);
    if (!OnPath.insert(C).second)
      return 0; // Do not revisit a class on one path.
    uint64_t Total = 0;
    for (ENodeId N : G.classNodes(C)) {
      Total += countNode(N);
      if (Total >= Cap) {
        Total = Cap;
        break;
      }
    }
    OnPath.erase(C);
    return Total;
  }

private:
  const EGraph &G;
  uint64_t Cap;
  std::unordered_set<ClassId> OnPath;

  uint64_t countNode(ENodeId N) {
    const ENode &Node = G.node(N);
    uint64_t Ways = 1;
    for (ClassId C : Node.Children) {
      uint64_t ChildWays = countClass(C);
      if (ChildWays == 0)
        return 0; // Child only computable through the path above us.
      if (ChildWays >= Cap / Ways)
        return Cap;
      Ways *= ChildWays;
    }
    return Ways;
  }
};

} // namespace

uint64_t denali::egraph::countComputations(const EGraph &G, ClassId Root,
                                           uint64_t Cap) {
  return ComputationCounter(G, Cap).countClass(Root);
}

ClassValuation denali::egraph::evaluateClasses(const EGraph &G,
                                               const ir::Env &Bindings,
                                               const ir::Definitions *Defs) {
  ClassValuation Out;
  const ir::Context &Ctx = G.context();

  // Collect live nodes once.
  std::vector<ENodeId> Live;
  for (ClassId C : G.canonicalClasses())
    for (ENodeId N : G.classNodes(C))
      Live.push_back(N);

  auto tryEvalNode = [&](ENodeId NId) -> std::optional<ir::Value> {
    const ENode &N = G.node(NId);
    const ir::OpInfo &Info = Ctx.Ops.info(N.Op);
    if (Info.BuiltinOp == Builtin::Const)
      return ir::Value::makeInt(N.ConstVal);
    if (Info.Kind == ir::OpKind::Variable) {
      auto It = Bindings.find(N.Op);
      if (It == Bindings.end())
        return std::nullopt;
      return It->second;
    }
    std::vector<ir::Value> Args;
    Args.reserve(N.Children.size());
    for (ClassId C : N.Children) {
      auto It = Out.Values.find(G.find(C));
      if (It == Out.Values.end())
        return std::nullopt;
      Args.push_back(It->second);
    }
    if (Info.Kind == ir::OpKind::Builtin)
      return ir::evalBuiltin(Info.BuiltinOp, Args);
    // Declared operator: expand through a registered definition.
    if (!Defs)
      return std::nullopt;
    auto DefIt = Defs->find(N.Op);
    if (DefIt == Defs->end())
      return std::nullopt;
    const ir::OpDefinition &Def = DefIt->second;
    if (Def.Params.size() != Args.size())
      return std::nullopt;
    ir::Env Inner = Bindings;
    for (size_t I = 0; I < Args.size(); ++I)
      Inner[Def.Params[I]] = Args[I];
    return ir::evalTerm(Ctx.Terms, Def.Body, Inner, Defs);
  };

  // Fixpoint: keep sweeping until no class gains a value.
  std::unordered_set<ENodeId> ViolatedNodes;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (ENodeId NId : Live) {
      std::optional<ir::Value> V = tryEvalNode(NId);
      if (!V)
        continue;
      ClassId C = G.classOf(NId);
      auto It = Out.Values.find(C);
      if (It == Out.Values.end()) {
        Out.Values.emplace(C, *V);
        Changed = true;
      } else if (!It->second.equals(*V)) {
        std::string Msg = strFormat(
            "class c%u: node %s evaluates to %s but class holds %s", C,
            G.nodeToString(NId).c_str(), V->toString().c_str(),
            It->second.toString().c_str());
        // Record each violating node once.
        if (ViolatedNodes.insert(NId).second)
          Out.Violations.push_back(std::move(Msg));
      }
    }
  }
  return Out;
}

std::string denali::egraph::toGraphviz(const EGraph &G) {
  const ir::Context &Ctx = G.context();
  std::string Out = "digraph egraph {\n  compound=true;\n"
                    "  node [shape=box, fontname=\"monospace\"];\n";
  for (ClassId C : G.canonicalClasses()) {
    Out += strFormat("  subgraph cluster_%u {\n    label=\"c%u\";\n", C, C);
    for (ENodeId N : G.classNodes(C)) {
      const ENode &Node = G.node(N);
      std::string Label = Ctx.Ops.isConst(Node.Op)
                              ? formatConstant(Node.ConstVal)
                              : Ctx.Ops.info(Node.Op).Name;
      Out += strFormat("    n%u [label=\"%s\"];\n", N, Label.c_str());
    }
    Out += "  }\n";
  }
  for (ClassId C : G.canonicalClasses()) {
    for (ENodeId N : G.classNodes(C)) {
      const ENode &Node = G.node(N);
      for (size_t I = 0; I < Node.Children.size(); ++I) {
        ClassId Child = G.find(Node.Children[I]);
        // Point at a representative node of the child class.
        std::vector<ENodeId> Members = G.classNodes(Child);
        if (Members.empty())
          continue;
        Out += strFormat("  n%u -> n%u [lhead=cluster_%u, label=\"%zu\"];\n",
                         N, Members.front(), Child, I);
      }
    }
  }
  Out += "}\n";
  return Out;
}
