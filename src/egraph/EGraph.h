//===- egraph/EGraph.h - The E-graph ----------------------------*- C++ -*-===//
///
/// \file
/// The E-graph (paper, section 5): a term DAG augmented with an equivalence
/// relation on nodes. An E-graph of size O(n) can represent exponentially
/// many ways of computing a term; Denali's matcher saturates it with axiom
/// instances, and the constraint generator reads every machine-computable
/// alternative out of it.
///
/// Beyond plain congruence closure this E-graph carries the three fact
/// kinds the paper's matcher uses:
///   * equalities  — assertEqual / merge;
///   * distinctions — pairs of classes constrained *uncombinable*;
///   * clauses     — disjunctions of equality/distinction literals, with
///     untenable-literal deletion and unit propagation (section 5's
///     select-store example).
///
/// The E-graph also runs a constant analysis: classes whose value is a
/// known 64-bit constant fold through builtin operators (this is how
/// `mskbl(0, i)` collapses to `0`, enabling further matches).
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_EGRAPH_EGRAPH_H
#define DENALI_EGRAPH_EGRAPH_H

#include "egraph/UnionFind.h"
#include "ir/Term.h"
#include "support/FunctionRef.h"

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace denali {
namespace egraph {

using ClassId = uint32_t;
using ENodeId = uint32_t;

/// One E-node: an operator applied to equivalence classes.
struct ENode {
  ir::OpId Op = 0;
  std::vector<ClassId> Children; ///< Canonical as of the last rebuild.
  uint64_t ConstVal = 0;         ///< For Builtin::Const nodes.
  ClassId Class = 0;             ///< May be stale; canonicalize via find().
  bool Alive = true; ///< False once deduplicated against a congruent twin.
};

/// Why two classes were merged — one edge of the proof forest. The matcher
/// stamps axiom instances (rule id, firing round, substitution slice into
/// the graph's substitution arena); the graph itself stamps congruence
/// merges, constant folds, and clause unit propagations.
struct Justification {
  enum class Kind : uint8_t {
    External,     ///< assertEqual without an explicit reason (\assume, tests).
    Axiom,        ///< Matcher-instantiated axiom equality.
    Congruence,   ///< Two nodes became congruent twins during repair().
    ConstantFold, ///< A node's arguments all folded to constants.
    ClauseUnit,   ///< A recorded clause reduced to one equality literal.
  };
  Kind TheKind = Kind::External;
  uint32_t RuleId = ~0u;  ///< Axiom index (Kind::Axiom).
  uint32_t Round = 0;     ///< Matcher round the instance fired in.
  ENodeId NodeA = ~0u;    ///< Congruence: the surviving node; fold: the node.
  ENodeId NodeB = ~0u;    ///< Congruence: the retired twin.
  uint32_t SubstBegin = 0; ///< Slice into EGraph::substArena() (Axiom).
  uint32_t SubstLen = 0;

  static Justification axiom(uint32_t RuleId, uint32_t Round,
                             uint32_t SubstBegin, uint32_t SubstLen) {
    Justification J;
    J.TheKind = Kind::Axiom;
    J.RuleId = RuleId;
    J.Round = Round;
    J.SubstBegin = SubstBegin;
    J.SubstLen = SubstLen;
    return J;
  }
  static Justification congruence(ENodeId A, ENodeId B) {
    Justification J;
    J.TheKind = Kind::Congruence;
    J.NodeA = A;
    J.NodeB = B;
    return J;
  }
  static Justification constantFold(ENodeId N) {
    Justification J;
    J.TheKind = Kind::ConstantFold;
    J.NodeA = N;
    return J;
  }
  static Justification clauseUnit() {
    Justification J;
    J.TheKind = Kind::ClauseUnit;
    return J;
  }
};

/// One step of a derivation chain: the justification \p J asserted
/// From == To (Forward) or To == From (!Forward). Consecutive steps share
/// endpoints, so a chain From=A ... To=B is a proof that A and B are equal.
struct ProofStep {
  ClassId From = 0;
  ClassId To = 0;
  Justification J;
  bool Forward = true;
};

/// A literal of a recorded clause.
struct Literal {
  enum class Kind { Eq, Ne };
  Kind TheKind = Kind::Eq;
  ClassId A = 0;
  ClassId B = 0;

  static Literal eq(ClassId A, ClassId B) { return {Kind::Eq, A, B}; }
  static Literal ne(ClassId A, ClassId B) { return {Kind::Ne, A, B}; }
};

/// When congruence closure is restored after a mutation.
enum class RebuildMode {
  /// Every assertEqual/addNode/addClause immediately restores closure
  /// (repairs parents, folds constants, processes clauses). Simple, but a
  /// long instantiation batch pays one full clause scan per assertion.
  Eager,
  /// Mutations only union and enqueue dirty classes; closure is restored
  /// by an explicit batched rebuild() (egg-style). The matcher runs one
  /// rebuild per saturation round. Between a mutation and the next
  /// rebuild, union-find queries (find, sameClass, classConstant,
  /// areDistinct) stay exact — only congruence-derived merges, constant
  /// folds, and clause propagation lag.
  Deferred,
};

/// Mutation counters of one E-graph, cumulative over its lifetime. The
/// matcher reports per-saturation deltas through match.sched.* obs
/// counters, which is how scheduling regressions are diagnosed from a
/// metrics file.
struct RebuildStats {
  uint64_t Merges = 0;           ///< Class unions performed.
  uint64_t CongruenceMerges = 0; ///< Unions forced by congruent twins.
  uint64_t ConstantFolds = 0;    ///< Unions from the constant analysis.
  uint64_t Rebuilds = 0;         ///< rebuild() passes that found work.
  uint64_t Repairs = 0;          ///< Classes whose parents were rehashed.
};

class EGraph {
public:
  explicit EGraph(const ir::Context &Ctx, bool FoldConstants = true);

  //===--------------------------------------------------------------------===
  // Construction
  //===--------------------------------------------------------------------===

  /// Adds (or finds) the node op(children...). \returns its class.
  ClassId addNode(ir::OpId Op, const std::vector<ClassId> &Children);

  /// Adds (or finds) the constant \p Value.
  ClassId addConst(uint64_t Value);

  /// Recursively adds an interned term (shares structure via the hashcons).
  ClassId addTerm(ir::TermId Term);

  //===--------------------------------------------------------------------===
  // Facts
  //===--------------------------------------------------------------------===

  /// Asserts A = B and restores congruence closure. \returns true if the
  /// graph changed.
  bool assertEqual(ClassId A, ClassId B);

  /// assertEqual with an explicit provenance justification (recorded only
  /// when provenance is enabled; see enableProvenance).
  bool assertEqual(ClassId A, ClassId B, const Justification &J);

  /// Asserts A != B (classes become uncombinable). \returns true if the
  /// graph changed. Sets the inconsistent flag if A and B are already equal.
  bool assertDistinct(ClassId A, ClassId B);

  /// Records the clause L1 | ... | Ln. Untenable literals are deleted as
  /// the graph evolves; a clause reduced to one literal asserts it.
  void addClause(std::vector<Literal> Lits);

  //===--------------------------------------------------------------------===
  // Rebuilding
  //===--------------------------------------------------------------------===

  /// Switches between per-mutation (Eager) and batched (Deferred)
  /// congruence restoration. Switching back to Eager first runs any
  /// pending rebuild, so the graph is always closed under Eager.
  void setRebuildMode(RebuildMode M);
  RebuildMode rebuildMode() const { return Mode; }

  /// Restores congruence closure, constant folding, and clause propagation
  /// to a fixpoint. Idempotent; a no-op-ish fast path when nothing is
  /// pending. Under Eager mode this runs automatically after every
  /// mutation; under Deferred the owner calls it (the matcher: once per
  /// saturation round).
  void rebuild();

  /// True when deferred work (dirty classes or unfolded constants) is
  /// queued for the next rebuild().
  bool rebuildPending() const {
    return !Worklist.empty() || (FoldConstants && !FoldQueue.empty());
  }

  /// Lifetime mutation counters (merges, congruence merges, folds,
  /// rebuild passes, class repairs).
  const RebuildStats &rebuildStats() const { return Stats; }

  //===--------------------------------------------------------------------===
  // Queries
  //===--------------------------------------------------------------------===

  ClassId find(ClassId C) const { return UF.find(C); }
  bool sameClass(ClassId A, ClassId B) const { return UF.sameSet(A, B); }

  /// Fully compresses the union-find so subsequent find() calls are pure
  /// reads. Until the next merge, the const query interface (find,
  /// classConstant, classNodes, areDistinct, ...) is then safe to call
  /// concurrently from many threads — required by the portfolio budget
  /// search, whose probe workers all read one frozen E-graph.
  void compressPaths() const { UF.compressAll(); }

  /// True if A and B are constrained uncombinable, either explicitly or
  /// because they hold different constants.
  bool areDistinct(ClassId A, ClassId B) const;

  /// The known constant value of class \p C, if any.
  std::optional<uint64_t> classConstant(ClassId C) const;

  /// Live nodes in the class of \p C.
  std::vector<ENodeId> classNodes(ClassId C) const;

  /// Applies \p Fn to every live node in the class of \p C. Allocation-free
  /// variant of classNodes() for the e-matcher's inner loop; \p Fn must not
  /// mutate the graph.
  void forEachClassNode(ClassId C, FunctionRef<void(ENodeId)> Fn) const {
    for (ENodeId N : ClassStates[UF.find(C)].Members)
      if (Nodes[N].Alive)
        Fn(N);
  }

  /// All canonical class representatives.
  std::vector<ClassId> canonicalClasses() const;

  /// Live nodes whose operator is \p Op (used by the e-matcher's root
  /// indexing). May include nodes from many classes.
  const std::vector<ENodeId> &nodesWithOp(ir::OpId Op) const;

  const ENode &node(ENodeId N) const { return Nodes[N]; }
  ClassId classOf(ENodeId N) const { return UF.find(Nodes[N].Class); }

  size_t numNodes() const { return LiveNodeCount; }
  size_t numClasses() const;
  size_t numClauses() const { return Clauses.size(); }

  /// True once contradictory facts were asserted (indicates unsound axioms
  /// or a bug); the message describes the first conflict.
  bool isInconsistent() const { return Inconsistent; }
  const std::string &inconsistencyMessage() const { return ConflictMsg; }

  /// Monotonically increasing counter bumped on every merge and node
  /// addition; the matcher uses it to detect quiescence.
  uint64_t version() const { return Version; }

  //===--------------------------------------------------------------------===
  // Provenance (union-find proof forest)
  //===--------------------------------------------------------------------===

  /// Switches on per-merge justification recording. Call before any merge
  /// (typically right after construction); the off path costs nothing —
  /// not even the proof-forest storage is grown.
  void enableProvenance() { Provenance = true; }
  bool provenanceEnabled() const { return Provenance; }

  /// Copies a substitution (variable -> canonical class bindings) into the
  /// graph's arena; \returns the slice start for Justification::SubstBegin.
  uint32_t internSubst(const std::vector<ClassId> &Bindings) {
    uint32_t Begin = static_cast<uint32_t>(SubstArena.size());
    SubstArena.insert(SubstArena.end(), Bindings.begin(), Bindings.end());
    return Begin;
  }
  const std::vector<ClassId> &substArena() const { return SubstArena; }

  /// The derivation chain between two equal classes: a sequence of proof
  /// steps whose endpoints chain from find-equivalent \p A to \p B, each
  /// carrying the justification of one recorded merge. Empty when A and B
  /// are the same proof node (or provenance is off / they are not equal).
  /// The proof forest is kept separate from the query union-find and is
  /// never path-compressed, so chains replay actual assertion history.
  std::vector<ProofStep> explain(ClassId A, ClassId B) const;

  /// Renders one node (with class annotations) for debugging.
  std::string nodeToString(ENodeId N) const;

  const ir::Context &context() const { return Ctx; }

private:
  const ir::Context &Ctx;
  bool FoldConstants;

  UnionFind UF;
  std::vector<ENode> Nodes;
  size_t LiveNodeCount = 0;

  // Canonical-key hashcons.
  struct Key {
    ir::OpId Op;
    std::vector<ClassId> Children;
    uint64_t ConstVal;
    bool operator==(const Key &O) const {
      return Op == O.Op && ConstVal == O.ConstVal && Children == O.Children;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      size_t H = std::hash<uint64_t>()((static_cast<uint64_t>(K.Op) << 32) ^
                                       K.ConstVal);
      for (ClassId C : K.Children)
        H = H * 1000003u ^ C;
      return H;
    }
  };
  std::unordered_map<Key, ENodeId, KeyHash> Hashcons;

  // Per-class state, indexed by (possibly stale) class id; authoritative
  // only at the canonical representative.
  struct ClassState {
    std::vector<ENodeId> Members;
    std::vector<ENodeId> Parents; ///< Nodes using this class as a child.
    std::optional<uint64_t> Constant;
    std::vector<ClassId> DistinctFrom; ///< Canonicalize on use.
  };
  std::vector<ClassState> ClassStates;

  // Root-op index for the matcher.
  std::unordered_map<ir::OpId, std::vector<ENodeId>> OpIndex;
  std::vector<ENodeId> EmptyNodeList;

  // Pending congruence repairs (classes whose parents must be rehashed).
  std::vector<ClassId> Worklist;
  // Nodes whose constant-fold status should be (re)checked.
  std::deque<ENodeId> FoldQueue;

  struct Clause {
    std::vector<Literal> Lits;
    bool Done = false;
  };
  std::vector<Clause> Clauses;

  bool Inconsistent = false;
  std::string ConflictMsg;
  uint64_t Version = 0;
  bool InRebuild = false;
  RebuildMode Mode = RebuildMode::Eager;
  RebuildStats Stats;

  // Proof forest (provenance): per class id, the parent edge and its
  // justification. Parent pointers are reversed on union (re-rooting), never
  // compressed — explain() walks real assertion history. Grown lazily, only
  // when Provenance is on.
  bool Provenance = false;
  static constexpr ClassId NoProofParent = ~0u;
  struct ProofEdge {
    ClassId Parent = NoProofParent;
    Justification J;
    bool SelfIsA = true; ///< The child endpoint was the 'A' side of J.
  };
  std::vector<ProofEdge> ProofEdges;
  std::vector<ClassId> SubstArena;

  /// Adds the proof-forest edge for a recorded merge of (pre-find) A and B.
  void proofLink(ClassId A, ClassId B, const Justification &J);

  Key canonicalKey(const ENode &N) const;
  ENodeId insertNode(ir::OpId Op, std::vector<ClassId> Children,
                     uint64_t ConstVal, bool &WasNew);
  void mergeInto(ClassId Root, ClassId Gone);
  bool mergeClasses(ClassId A, ClassId B,
                    const Justification &J = Justification());
  void repair(ClassId C);
  void processClauses();
  void processFoldQueue();
  void conflict(const std::string &Msg);
  bool literalSatisfied(const Literal &L) const;
  bool literalUntenable(const Literal &L) const;
  void assertLiteral(const Literal &L);
};

} // namespace egraph
} // namespace denali

#endif // DENALI_EGRAPH_EGRAPH_H
