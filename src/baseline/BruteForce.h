//===- baseline/BruteForce.h - Massalin-style superoptimizer ----*- C++ -*-===//
///
/// \file
/// Baseline 1: the Massalin / GNU-superoptimizer approach the paper
/// contrasts with (sections 1.1, 8): exhaustively enumerate instruction
/// sequences in order of increasing length, execute each against a suite
/// of test vectors, and report sequences that pass as candidates. As in
/// Massalin's superoptimizer, only register-to-register computations are
/// enumerated (no memory access), candidates are *probably* correct
/// (verified here against extra random vectors), and cost grows
/// exponentially with the sequence length — the behaviour bench_bruteforce
/// measures against Denali's goal-directed search.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_BASELINE_BRUTEFORCE_H
#define DENALI_BASELINE_BRUTEFORCE_H

#include "ir/Eval.h"
#include "ir/Term.h"

#include <cstdint>
#include <string>
#include <vector>

namespace denali {
namespace baseline {

struct BruteForceOptions {
  unsigned MaxLength = 4;
  unsigned NumTestVectors = 8;
  unsigned VerifyVectors = 64;
  /// Register-to-register repertoire (Builtins with 1 or 2 operands).
  std::vector<ir::Builtin> Repertoire;
  /// Immediate pool for the second operand.
  std::vector<uint64_t> Immediates{0, 1, 2, 3, 4, 8, 16, 24, 255};
  /// Stop after this many complete sequences per length (0 = unlimited).
  uint64_t MaxSequencesPerLength = 0;
  uint64_t Seed = 1;

  /// The default Alpha-ish register-to-register repertoire.
  static std::vector<ir::Builtin> defaultRepertoire();
};

/// One enumerated instruction: Srcs index prior value slots (inputs first,
/// then instruction results); negative encodings -1-K denote
/// Immediates[K].
struct BruteInstr {
  ir::Builtin B;
  int Src0 = 0;
  int Src1 = 0; ///< Ignored for unary operators.
};

struct BruteForceResult {
  bool Found = false;
  unsigned Length = 0;
  std::vector<BruteInstr> Sequence;
  uint64_t SequencesTried = 0;   ///< Complete sequences executed.
  uint64_t CandidatesFound = 0;  ///< Passed the test vectors.
  uint64_t FalseCandidates = 0;  ///< Candidates the verifier rejected.
  double Seconds = 0;

  std::string toString(const ir::Context &Ctx,
                       const std::vector<std::string> &InputNames) const;
};

/// Searches for the shortest sequence computing \p Goal from the variables
/// \p InputNames (iterative deepening on length).
BruteForceResult bruteForceSearch(ir::Context &Ctx, ir::TermId Goal,
                                  const std::vector<std::string> &InputNames,
                                  const BruteForceOptions &Opts);

} // namespace baseline
} // namespace denali

#endif // DENALI_BASELINE_BRUTEFORCE_H
