//===- baseline/TreeCodegen.h - Conventional code generation ----*- C++ -*-===//
///
/// \file
/// Baseline 3: a straightforward code generator of the kind a conventional
/// compiler back end uses — one instruction per term-DAG node via a fixed
/// lowering table, followed by a greedy critical-path list scheduler over
/// the EV6 unit/latency/cluster model. No search: whatever shape the input
/// expression has is the shape of the code.
///
/// This plays the role of the production C compiler in the paper's
/// byteswap comparisons (section 8): Denali should tie or beat it, by one
/// cycle on byteswap5.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_BASELINE_TREECODEGEN_H
#define DENALI_BASELINE_TREECODEGEN_H

#include "alpha/Assembly.h"
#include "alpha/ISA.h"
#include "ir/Term.h"

#include <optional>
#include <string>
#include <vector>

namespace denali {
namespace baseline {

/// Lowers the goal terms to EV6 code by structural translation and list
/// scheduling. \returns std::nullopt with \p ErrorOut if some operator has
/// no lowering.
std::optional<alpha::Program>
naiveCodegen(const ir::Context &Ctx, const machine::MachineModel &Isa,
             const std::vector<std::pair<std::string, ir::TermId>> &Goals,
             const std::string &Name, std::string *ErrorOut);

} // namespace baseline
} // namespace denali

#endif // DENALI_BASELINE_TREECODEGEN_H
