//===- baseline/TreeCodegen.cpp -------------------------------------------===//

#include "baseline/TreeCodegen.h"

#include "ir/Eval.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <unordered_set>

using namespace denali;
using namespace denali::baseline;
using denali::ir::Builtin;

namespace {

/// Emits unscheduled instructions (Cycle/Unit assigned later).
class Lowering {
public:
  Lowering(const ir::Context &Ctx, const machine::MachineModel &Isa, std::string *ErrorOut)
      : Ctx(Ctx), Isa(Isa), ErrorOut(ErrorOut) {}

  bool run(const std::vector<std::pair<std::string, ir::TermId>> &Goals,
           alpha::Program &P) {
    for (const auto &[Target, Term] : Goals) {
      std::optional<alpha::Operand> Op = lower(Term);
      if (!Op)
        return false;
      uint32_t Reg;
      if (Op->isReg()) {
        Reg = Op->Reg;
      } else {
        // A literal result still needs a register.
        Reg = materializeConst(Op->Imm);
      }
      P.Outputs.push_back({Target, Reg});
    }
    P.Instrs = std::move(Instrs);
    P.Inputs = std::move(Inputs);
    P.NumVRegs = NextReg;
    return true;
  }

private:
  const ir::Context &Ctx;
  const machine::MachineModel &Isa;
  std::string *ErrorOut;
  std::vector<alpha::Instruction> Instrs;
  std::vector<alpha::ProgramInput> Inputs;
  std::unordered_map<ir::TermId, alpha::Operand> Memo;
  std::unordered_map<uint64_t, uint32_t> ConstRegs;
  std::unordered_map<ir::OpId, uint32_t> InputRegs;
  uint32_t NextReg = 0;

  bool fail(const std::string &Msg) {
    if (ErrorOut)
      *ErrorOut = Msg;
    return false;
  }

  uint32_t emit(Builtin B, std::vector<alpha::Operand> Srcs,
                alpha::MemKind Mem = alpha::MemKind::None, int64_t Disp = 0) {
    const alpha::InstrDesc *Desc = Isa.descFor(Ctx.Ops.builtin(B));
    alpha::Instruction I;
    I.Mnemonic = Desc->Mnemonic;
    I.Op = Desc->Op;
    I.Srcs = std::move(Srcs);
    I.Dest = NextReg++;
    I.Latency = Desc->Latency;
    I.Mem = Mem;
    I.Disp = Disp;
    Instrs.push_back(std::move(I));
    return Instrs.back().Dest;
  }

  uint32_t materializeConst(uint64_t V) {
    auto It = ConstRegs.find(V);
    if (It != ConstRegs.end())
      return It->second;
    alpha::Instruction I;
    I.Mnemonic = Isa.constMaterialize().Mnemonic;
    I.Op = Isa.constMaterialize().Op;
    I.Srcs = {alpha::Operand::imm(V)};
    I.Dest = NextReg++;
    I.Latency = Isa.constMaterialize().Latency;
    Instrs.push_back(std::move(I));
    ConstRegs.emplace(V, Instrs.back().Dest);
    return Instrs.back().Dest;
  }

  /// Operand conversion honoring the machine's literal slot: position
  /// \p ArgIdx of an instruction described by \p Desc.
  std::optional<alpha::Operand> asOperand(const alpha::Operand &Op,
                                          const alpha::InstrDesc *Desc,
                                          size_t ArgIdx, size_t Arity) {
    if (Op.isReg())
      return Op;
    if (Op.Imm == 0)
      return Op; // Zero register.
    bool ImmSlot = Desc && Desc->AllowsImm &&
                   ArgIdx == Isa.immArgIndex(*Desc, Arity) &&
                   Isa.immFits(*Desc, Op.Imm);
    if (ImmSlot)
      return Op;
    return alpha::Operand::reg(materializeConst(Op.Imm));
  }

  std::optional<alpha::Operand> lower(ir::TermId T) {
    auto It = Memo.find(T);
    if (It != Memo.end())
      return It->second;
    std::optional<alpha::Operand> Result = lowerUncached(T);
    if (Result)
      Memo.emplace(T, *Result);
    return Result;
  }

  std::optional<alpha::Operand>
  lowerMachine(Builtin B, const std::vector<ir::TermId> &Children) {
    const alpha::InstrDesc *Desc = Isa.descFor(Ctx.Ops.builtin(B));
    std::vector<alpha::Operand> Srcs;
    for (size_t I = 0; I < Children.size(); ++I) {
      std::optional<alpha::Operand> C = lower(Children[I]);
      if (!C)
        return std::nullopt;
      std::optional<alpha::Operand> Op =
          asOperand(*C, Desc, I, Children.size());
      if (!Op)
        return std::nullopt;
      Srcs.push_back(*Op);
    }
    return alpha::Operand::reg(emit(B, std::move(Srcs)));
  }

  std::optional<alpha::Operand> lowerUncached(ir::TermId T) {
    const ir::TermNode &N = Ctx.Terms.node(T);
    const ir::OpInfo &Info = Ctx.Ops.info(N.Op);

    if (Info.BuiltinOp == Builtin::Const)
      return alpha::Operand::imm(N.ConstVal);
    if (Info.Kind == ir::OpKind::Variable) {
      auto It = InputRegs.find(N.Op);
      if (It != InputRegs.end())
        return alpha::Operand::reg(It->second);
      uint32_t R = NextReg++;
      // Memory-ness is determined by use; patched by the select/store
      // lowering below.
      Inputs.push_back({R, Info.Name, false});
      InputRegs.emplace(N.Op, R);
      return alpha::Operand::reg(R);
    }
    if (Info.Kind == ir::OpKind::Declared)
      return fail(strFormat("naive codegen cannot lower declared operator "
                            "'%s'", Info.Name.c_str())),
             std::nullopt;

    // Fully constant subtrees fold.
    {
      std::string EvalErr;
      std::optional<ir::Value> V = ir::evalTerm(Ctx.Terms, T, {}, nullptr,
                                                &EvalErr);
      if (V && V->isInt())
        return alpha::Operand::imm(V->asInt());
    }

    Builtin B = Info.BuiltinOp;
    if (Isa.descFor(N.Op) && B != Builtin::Select && B != Builtin::Store)
      return lowerMachine(B, N.Children);

    switch (B) {
    case Builtin::Select:
    case Builtin::Store: {
      std::optional<alpha::Operand> Mem = lower(N.Children[0]);
      if (!Mem)
        return std::nullopt;
      if (Mem->isReg())
        for (alpha::ProgramInput &In : Inputs)
          if (In.Reg == Mem->Reg)
            In.IsMemory = true;
      // Fold add64(base, k) addresses into the displacement.
      ir::TermId Addr = N.Children[1];
      int64_t Disp = 0;
      const ir::TermNode &AN = Ctx.Terms.node(Addr);
      if (AN.Op == Ctx.Ops.builtin(Builtin::Add64)) {
        const ir::TermNode &K1 = Ctx.Terms.node(AN.Children[1]);
        if (Ctx.Ops.isConst(K1.Op) &&
            static_cast<int64_t>(K1.ConstVal) <= 32767 &&
            static_cast<int64_t>(K1.ConstVal) >= -32768) {
          Disp = static_cast<int64_t>(K1.ConstVal);
          Addr = AN.Children[0];
        }
      }
      std::optional<alpha::Operand> Base = lower(Addr);
      if (!Base)
        return std::nullopt;
      if (!Base->isReg() && Base->Imm != 0)
        Base = alpha::Operand::reg(materializeConst(Base->Imm));
      if (B == Builtin::Select)
        return alpha::Operand::reg(
            emit(Builtin::Select, {*Mem, *Base}, alpha::MemKind::Load, Disp));
      std::optional<alpha::Operand> Val = lower(N.Children[2]);
      if (!Val)
        return std::nullopt;
      if (!Val->isReg() && Val->Imm != 0)
        Val = alpha::Operand::reg(materializeConst(Val->Imm));
      return alpha::Operand::reg(emit(Builtin::Store, {*Mem, *Base, *Val},
                                      alpha::MemKind::Store, Disp));
    }
    case Builtin::SelectB:
      return lowerMachine(Builtin::Extbl, {N.Children[0], N.Children[1]});
    case Builtin::SelectW:
      return lowerMachine(Builtin::Extwl, {N.Children[0], N.Children[1]});
    case Builtin::StoreB:
    case Builtin::StoreW: {
      // storeb(w, i, x) = bis(mskbl(w, i), insbl(x, i)).
      Builtin Msk = B == Builtin::StoreB ? Builtin::Mskbl : Builtin::Mskwl;
      Builtin Ins = B == Builtin::StoreB ? Builtin::Insbl : Builtin::Inswl;
      std::optional<alpha::Operand> M =
          lowerMachine(Msk, {N.Children[0], N.Children[1]});
      std::optional<alpha::Operand> I =
          lowerMachine(Ins, {N.Children[2], N.Children[1]});
      if (!M || !I)
        return std::nullopt;
      return alpha::Operand::reg(emit(Builtin::Or64, {*M, *I}));
    }
    case Builtin::Zext8:
      return lowerViaZapnot(N.Children[0], 0x1);
    case Builtin::Zext16:
      return lowerViaZapnot(N.Children[0], 0x3);
    case Builtin::Zext32:
      return lowerViaZapnot(N.Children[0], 0xf);
    case Builtin::Sext8:
      return lowerShiftPair(N.Children[0], 56);
    case Builtin::Sext16:
      return lowerShiftPair(N.Children[0], 48);
    case Builtin::Sext32:
      return lowerShiftPair(N.Children[0], 32);
    default:
      return fail(strFormat("naive codegen has no lowering for '%s'",
                            Info.Name.c_str())),
             std::nullopt;
    }
  }

  std::optional<alpha::Operand> lowerViaZapnot(ir::TermId Arg,
                                               uint64_t Mask) {
    std::optional<alpha::Operand> A = lower(Arg);
    if (!A)
      return std::nullopt;
    std::optional<alpha::Operand> Op = asOperand(
        *A, Isa.descFor(Ctx.Ops.builtin(Builtin::Zapnot)), 0, 2);
    return alpha::Operand::reg(
        emit(Builtin::Zapnot, {*Op, alpha::Operand::imm(Mask)}));
  }

  std::optional<alpha::Operand> lowerShiftPair(ir::TermId Arg,
                                               uint64_t Amount) {
    std::optional<alpha::Operand> A = lower(Arg);
    if (!A)
      return std::nullopt;
    if (!A->isReg() && A->Imm != 0)
      A = alpha::Operand::reg(materializeConst(A->Imm));
    uint32_t Left =
        emit(Builtin::Shl64, {*A, alpha::Operand::imm(Amount)});
    return alpha::Operand::reg(emit(
        Builtin::Sar64,
        {alpha::Operand::reg(Left), alpha::Operand::imm(Amount)}));
  }
};

/// Greedy critical-path list scheduler over the machine's unit/latency/
/// cluster model.
void listSchedule(const machine::MachineModel &Isa, alpha::Program &P) {
  size_t N = P.Instrs.size();
  // Producer index per vreg.
  std::unordered_map<uint32_t, size_t> ProducerOf;
  for (size_t I = 0; I < N; ++I)
    ProducerOf[P.Instrs[I].Dest] = I;
  std::unordered_set<uint32_t> InputRegs;
  for (const alpha::ProgramInput &In : P.Inputs)
    InputRegs.insert(In.Reg);

  // Heights (critical path to any consumer-free end).
  std::vector<unsigned> Height(N, 0);
  for (size_t I = N; I-- > 0;) {
    Height[I] = P.Instrs[I].Latency;
    // Consumers appear later in emission order.
    for (size_t J = I + 1; J < N; ++J)
      for (const alpha::Operand &S : P.Instrs[J].Srcs)
        if (S.isReg() && S.Reg == P.Instrs[I].Dest)
          Height[I] = std::max(Height[I], P.Instrs[I].Latency + Height[J]);
  }

  std::vector<bool> Done(N, false);
  // ReadyAt[vreg][cluster].
  const unsigned NC = Isa.numClusters();
  std::unordered_map<uint32_t, std::array<unsigned, machine::MaxClusters>>
      ReadyAt;
  for (uint32_t R : InputRegs)
    ReadyAt[R] = {};

  size_t Scheduled = 0;
  unsigned Cycle = 0;
  unsigned Makespan = 0;
  while (Scheduled < N && Cycle < 10000) {
    for (unsigned UIdx = 0; UIdx < Isa.numUnits(); ++UIdx) {
      machine::UnitId Un = static_cast<machine::UnitId>(UIdx);
      unsigned Cluster = Isa.clusterOf(Un);
      // Best ready instruction for this slot.
      size_t Best = N;
      for (size_t I = 0; I < N; ++I) {
        if (Done[I])
          continue;
        const alpha::InstrDesc *Desc =
            P.Instrs[I].Op == Isa.constMaterialize().Op
                ? &Isa.constMaterialize()
                : Isa.descFor(P.Instrs[I].Op);
        if (!Desc || !(Desc->UnitMask & (1u << UIdx)))
          continue;
        bool Ready = true;
        for (const alpha::Operand &S : P.Instrs[I].Srcs) {
          if (!S.isReg())
            continue;
          auto It = ReadyAt.find(S.Reg);
          if (It == ReadyAt.end() || It->second[Cluster] > Cycle) {
            Ready = false;
            break;
          }
        }
        // In-order memory discipline: a load/store may not bypass earlier
        // unscheduled memory operations (conservative, compiler-like).
        if (Ready && P.Instrs[I].Mem != alpha::MemKind::None) {
          for (size_t J = 0; J < I; ++J)
            if (!Done[J] && P.Instrs[J].Mem != alpha::MemKind::None) {
              Ready = false;
              break;
            }
        }
        if (!Ready)
          continue;
        if (Best == N || Height[I] > Height[Best])
          Best = I;
      }
      if (Best == N)
        continue;
      alpha::Instruction &I = P.Instrs[Best];
      I.Cycle = Cycle;
      I.IssueUnit = Un;
      Done[Best] = true;
      ++Scheduled;
      unsigned Fin = Cycle + I.Latency;
      auto &Entry = ReadyAt[I.Dest];
      for (unsigned C = 0; C < NC; ++C)
        Entry[C] = (C == Cluster || I.Mem == alpha::MemKind::Store)
                       ? Fin
                       : Fin + Isa.crossClusterDelay();
      Makespan = std::max(Makespan, Fin);
    }
    ++Cycle;
  }
  P.Cycles = Makespan;
  std::stable_sort(P.Instrs.begin(), P.Instrs.end(),
                   [](const alpha::Instruction &A,
                      const alpha::Instruction &B) {
                     if (A.Cycle != B.Cycle)
                       return A.Cycle < B.Cycle;
                     return A.IssueUnit < B.IssueUnit;
                   });
}

} // namespace

std::optional<alpha::Program> denali::baseline::naiveCodegen(
    const ir::Context &Ctx, const machine::MachineModel &Isa,
    const std::vector<std::pair<std::string, ir::TermId>> &Goals,
    const std::string &Name, std::string *ErrorOut) {
  alpha::Program P;
  P.Name = Name;
  P.Model = &Isa;
  Lowering L(Ctx, Isa, ErrorOut);
  if (!L.run(Goals, P))
    return std::nullopt;
  listSchedule(Isa, P);
  return P;
}
