//===- baseline/BruteForce.cpp --------------------------------------------===//

#include "baseline/BruteForce.h"

#include "support/StringExtras.h"
#include "support/Timer.h"

#include <random>

using namespace denali;
using namespace denali::baseline;
using denali::ir::Builtin;

std::vector<Builtin> BruteForceOptions::defaultRepertoire() {
  return {Builtin::Add64, Builtin::Sub64, Builtin::And64, Builtin::Or64,
          Builtin::Xor64, Builtin::Bic64, Builtin::Shl64, Builtin::Shr64,
          Builtin::Sar64, Builtin::CmpUlt, Builtin::CmpEq, Builtin::Extbl,
          Builtin::Insbl, Builtin::Mskbl, Builtin::Zapnot, Builtin::S4Addl,
          Builtin::S8Addl, Builtin::Not64, Builtin::Neg64};
}

namespace {

unsigned arityOf(Builtin B) {
  return (B == Builtin::Not64 || B == Builtin::Neg64) ? 1 : 2;
}

class Searcher {
public:
  Searcher(ir::Context &Ctx, ir::TermId Goal,
           const std::vector<std::string> &InputNames,
           const BruteForceOptions &Opts)
      : Ctx(Ctx), Goal(Goal), InputNames(InputNames), Opts(Opts) {}

  BruteForceResult run() {
    Timer T;
    BruteForceResult Result;
    std::mt19937_64 Rng(Opts.Seed * 0x2545f4914f6cdd1dULL + 1);

    // Test vectors: per vector, input values and the expected result.
    unsigned NumInputs = static_cast<unsigned>(InputNames.size());
    for (unsigned V = 0; V < Opts.NumTestVectors; ++V) {
      std::vector<uint64_t> Ins;
      for (unsigned I = 0; I < NumInputs; ++I)
        Ins.push_back(interestingValue(Rng, V, I));
      uint64_t Want;
      if (!evalGoal(Ins, Want))
        return Result; // Goal not evaluable: give up.
      Vectors.push_back(std::move(Ins));
      Expected.push_back(Want);
    }

    // Per-vector value slots: inputs, then one per instruction.
    Slots.assign(Vectors.size(), {});
    for (size_t V = 0; V < Vectors.size(); ++V)
      Slots[V] = Vectors[V];

    for (unsigned L = 1; L <= Opts.MaxLength; ++L) {
      Sequence.clear();
      Budget = Opts.MaxSequencesPerLength;
      if (dfs(L, Result, Rng)) {
        Result.Found = true;
        Result.Length = L;
        Result.Sequence = Sequence;
        break;
      }
      if (Opts.MaxSequencesPerLength && Budget == 0)
        break; // Budget exhausted at this length.
    }
    Result.Seconds = T.seconds();
    return Result;
  }

private:
  ir::Context &Ctx;
  ir::TermId Goal;
  const std::vector<std::string> &InputNames;
  const BruteForceOptions &Opts;

  std::vector<std::vector<uint64_t>> Vectors;
  std::vector<uint64_t> Expected;
  std::vector<std::vector<uint64_t>> Slots;
  std::vector<BruteInstr> Sequence;
  uint64_t Budget = 0;

  static uint64_t interestingValue(std::mt19937_64 &Rng, unsigned V,
                                   unsigned I) {
    // A few corner cases, then random.
    static const uint64_t Corners[] = {0, 1, ~0ULL, 0x8000000000000000ULL,
                                       0xff, 0x0123456789abcdefULL};
    if (V < std::size(Corners) && I == 0)
      return Corners[V];
    return Rng();
  }

  bool evalGoal(const std::vector<uint64_t> &Ins, uint64_t &Out) {
    ir::Env E;
    for (size_t I = 0; I < InputNames.size(); ++I)
      E[Ctx.Ops.makeVariable(InputNames[I])] = ir::Value::makeInt(Ins[I]);
    std::optional<ir::Value> V = ir::evalTerm(Ctx.Terms, Goal, E);
    if (!V || !V->isInt())
      return false;
    Out = V->asInt();
    return true;
  }

  uint64_t operandValue(size_t Vec, int Src) const {
    if (Src >= 0)
      return Slots[Vec][static_cast<size_t>(Src)];
    return Opts.Immediates[static_cast<size_t>(-1 - Src)];
  }

  bool dfs(unsigned Remaining, BruteForceResult &Result,
           std::mt19937_64 &Rng) {
    if (Remaining == 0) {
      ++Result.SequencesTried;
      if (Budget && --Budget == 0)
        return false;
      // The last computed slot must match on every vector.
      for (size_t V = 0; V < Vectors.size(); ++V)
        if (Slots[V].back() != Expected[V])
          return false;
      ++Result.CandidatesFound;
      return verify(Rng, Result);
    }
    std::vector<Builtin> Repertoire =
        Opts.Repertoire.empty() ? BruteForceOptions::defaultRepertoire()
                                : Opts.Repertoire;
    int NumSlots = static_cast<int>(Slots[0].size());
    int NumImms = static_cast<int>(Opts.Immediates.size());
    for (Builtin B : Repertoire) {
      unsigned Arity = arityOf(B);
      for (int S0 = 0; S0 < NumSlots; ++S0) {
        int S1Lo = Arity == 1 ? 0 : -NumImms;
        int S1Hi = Arity == 1 ? 1 : NumSlots;
        for (int S1 = S1Lo; S1 < S1Hi; ++S1) {
          if (Opts.MaxSequencesPerLength && Budget == 0)
            return false;
          // Push the instruction: compute its value on every vector.
          for (size_t V = 0; V < Vectors.size(); ++V) {
            uint64_t A = operandValue(V, S0);
            uint64_t C = Arity == 1 ? 0 : operandValue(V, S1);
            std::vector<uint64_t> Args{A};
            if (Arity == 2)
              Args.push_back(C);
            Slots[V].push_back(ir::evalBuiltinInt(B, Args));
          }
          Sequence.push_back(BruteInstr{B, S0, S1});
          bool Found = dfs(Remaining - 1, Result, Rng);
          if (!Found) {
            Sequence.pop_back();
            for (size_t V = 0; V < Vectors.size(); ++V)
              Slots[V].pop_back();
          }
          if (Found)
            return true;
        }
      }
    }
    return false;
  }

  bool verify(std::mt19937_64 &Rng, BruteForceResult &Result) {
    for (unsigned Trial = 0; Trial < Opts.VerifyVectors; ++Trial) {
      std::vector<uint64_t> Ins;
      for (size_t I = 0; I < InputNames.size(); ++I)
        Ins.push_back(Rng());
      uint64_t Want;
      if (!evalGoal(Ins, Want))
        return false;
      // Execute the sequence.
      std::vector<uint64_t> Vals = Ins;
      for (const BruteInstr &I : Sequence) {
        auto Val = [&](int Src) {
          return Src >= 0 ? Vals[static_cast<size_t>(Src)]
                          : Opts.Immediates[static_cast<size_t>(-1 - Src)];
        };
        std::vector<uint64_t> Args{Val(I.Src0)};
        if (arityOf(I.B) == 2)
          Args.push_back(Val(I.Src1));
        Vals.push_back(ir::evalBuiltinInt(I.B, Args));
      }
      if (Vals.back() != Want) {
        ++Result.FalseCandidates;
        return false; // Passed the suite but is wrong: keep searching.
      }
    }
    return true;
  }
};

} // namespace

std::string
BruteForceResult::toString(const ir::Context &Ctx,
                           const std::vector<std::string> &InputNames) const {
  if (!Found)
    return "(not found)";
  std::string Out;
  unsigned SlotIdx = static_cast<unsigned>(InputNames.size());
  for (const BruteInstr &I : Sequence) {
    const char *Name =
        Ctx.Ops.info(Ctx.Ops.builtin(I.B)).Name.c_str();
    auto SrcName = [&](int Src) -> std::string {
      if (Src < 0)
        return strFormat("#imm%d", -1 - Src);
      if (static_cast<size_t>(Src) < InputNames.size())
        return InputNames[static_cast<size_t>(Src)];
      return strFormat("t%d", Src - static_cast<int>(InputNames.size()));
    };
    Out += strFormat("  t%u = %s %s", SlotIdx - static_cast<unsigned>(
                                                    InputNames.size()),
                     Name, SrcName(I.Src0).c_str());
    if (arityOf(I.B) == 2)
      Out += ", " + SrcName(I.Src1);
    Out += '\n';
    ++SlotIdx;
  }
  return Out;
}

BruteForceResult
denali::baseline::bruteForceSearch(ir::Context &Ctx, ir::TermId Goal,
                                   const std::vector<std::string> &InputNames,
                                   const BruteForceOptions &Opts) {
  return Searcher(Ctx, Goal, InputNames, Opts).run();
}
