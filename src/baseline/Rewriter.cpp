//===- baseline/Rewriter.cpp ----------------------------------------------===//

#include "baseline/Rewriter.h"

#include "ir/Eval.h"

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace denali;
using namespace denali::baseline;
using denali::ir::Builtin;
using denali::ir::TermId;

namespace {

bool isPow2(uint64_t V) { return V && (V & (V - 1)) == 0; }
unsigned log2Exact(uint64_t V) {
  unsigned N = 0;
  while (V > 1) {
    V >>= 1;
    ++N;
  }
  return N;
}

/// One directed rule: returns the replacement, or std::nullopt when the
/// rule does not apply (TermId 0 is a valid term, so no sentinel).
struct Rule {
  const char *Name;
  std::function<std::optional<TermId>(ir::Context &, TermId)> Apply;
};

std::optional<uint64_t> constOf(ir::Context &Ctx, TermId T) {
  const ir::TermNode &N = Ctx.Terms.node(T);
  if (!Ctx.Ops.isConst(N.Op))
    return std::nullopt;
  return N.ConstVal;
}

std::vector<Rule> buildRules() {
  std::vector<Rule> Rules;
  auto add = [&](const char *Name,
                 std::function<std::optional<TermId>(ir::Context &, TermId)>
                     F) {
    Rules.push_back(Rule{Name, std::move(F)});
  };

  // Constant folding: any all-constant subtree becomes a literal.
  add("const-fold", [](ir::Context &Ctx, TermId T) -> std::optional<TermId> {
    const ir::TermNode &N = Ctx.Terms.node(T);
    if (Ctx.Ops.isConst(N.Op) || N.Children.empty())
      return std::nullopt;
    for (TermId C : N.Children)
      if (!constOf(Ctx, C))
        return std::nullopt;
    std::optional<ir::Value> V = ir::evalTerm(Ctx.Terms, T, {});
    if (!V || !V->isInt())
      return std::nullopt;
    return Ctx.Terms.makeConst(V->asInt());
  });

  // Strength reduction: x * 2^n -> x << n.
  add("mul-to-shift", [](ir::Context &Ctx, TermId T) -> std::optional<TermId> {
    const ir::TermNode &N = Ctx.Terms.node(T);
    if (N.Op != Ctx.Ops.builtin(Builtin::Mul64))
      return std::nullopt;
    for (int Side = 0; Side < 2; ++Side) {
      std::optional<uint64_t> K = constOf(Ctx, N.Children[Side]);
      if (K && isPow2(*K))
        return Ctx.Terms.makeBuiltin(
            Builtin::Shl64,
            {N.Children[1 - Side], Ctx.Terms.makeConst(log2Exact(*K))});
    }
    return std::nullopt;
  });

  // The scaled-add patterns (which mul-to-shift destroys first — the
  // phase-ordering trap the E-graph avoids).
  add("scaled-add", [](ir::Context &Ctx, TermId T) -> std::optional<TermId> {
    const ir::TermNode &N = Ctx.Terms.node(T);
    if (N.Op != Ctx.Ops.builtin(Builtin::Add64))
      return std::nullopt;
    for (int Side = 0; Side < 2; ++Side) {
      TermId MulT = N.Children[Side];
      const ir::TermNode &MN = Ctx.Terms.node(MulT);
      if (MN.Op != Ctx.Ops.builtin(Builtin::Mul64))
        continue;
      for (int MSide = 0; MSide < 2; ++MSide) {
        std::optional<uint64_t> K = constOf(Ctx, MN.Children[MSide]);
        if (!K || (*K != 4 && *K != 8))
          continue;
        Builtin B = *K == 4 ? Builtin::S4Addl : Builtin::S8Addl;
        return Ctx.Terms.makeBuiltin(
            B, {MN.Children[1 - MSide], N.Children[1 - Side]});
      }
    }
    return std::nullopt;
  });

  // Identities.
  auto identity = [&](const char *Name, Builtin B, uint64_t Id,
                      bool Symmetric) {
    add(Name, [B, Id, Symmetric](ir::Context &Ctx, TermId T) -> std::optional<TermId> {
      const ir::TermNode &N = Ctx.Terms.node(T);
      if (N.Op != Ctx.Ops.builtin(B))
        return std::nullopt;
      std::optional<uint64_t> K1 = constOf(Ctx, N.Children[1]);
      if (K1 && *K1 == Id)
        return N.Children[0];
      if (Symmetric) {
        std::optional<uint64_t> K0 = constOf(Ctx, N.Children[0]);
        if (K0 && *K0 == Id)
          return N.Children[1];
      }
      return std::nullopt;
    });
  };
  identity("add-id", Builtin::Add64, 0, true);
  identity("or-id", Builtin::Or64, 0, true);
  identity("xor-id", Builtin::Xor64, 0, true);
  identity("sub-id", Builtin::Sub64, 0, false);
  identity("shl-id", Builtin::Shl64, 0, false);
  identity("shr-id", Builtin::Shr64, 0, false);
  identity("mul-id", Builtin::Mul64, 1, true);
  identity("and-id", Builtin::And64, ~0ULL, true);

  // Byte-operation lowering (what a compiler's expander does).
  add("selectb-to-extbl", [](ir::Context &Ctx, TermId T) -> std::optional<TermId> {
    const ir::TermNode &N = Ctx.Terms.node(T);
    if (N.Op != Ctx.Ops.builtin(Builtin::SelectB))
      return std::nullopt;
    return Ctx.Terms.makeBuiltin(Builtin::Extbl, {N.Children[0],
                                                  N.Children[1]});
  });
  add("selectw-to-extwl", [](ir::Context &Ctx, TermId T) -> std::optional<TermId> {
    const ir::TermNode &N = Ctx.Terms.node(T);
    if (N.Op != Ctx.Ops.builtin(Builtin::SelectW))
      return std::nullopt;
    return Ctx.Terms.makeBuiltin(Builtin::Extwl, {N.Children[0],
                                                  N.Children[1]});
  });
  add("storeb-expand", [](ir::Context &Ctx, TermId T) -> std::optional<TermId> {
    const ir::TermNode &N = Ctx.Terms.node(T);
    if (N.Op != Ctx.Ops.builtin(Builtin::StoreB))
      return std::nullopt;
    TermId Msk = Ctx.Terms.makeBuiltin(Builtin::Mskbl,
                                       {N.Children[0], N.Children[1]});
    TermId Ins = Ctx.Terms.makeBuiltin(Builtin::Insbl,
                                       {N.Children[2], N.Children[1]});
    return Ctx.Terms.makeBuiltin(Builtin::Or64, {Msk, Ins});
  });
  add("mskbl-fold", [](ir::Context &Ctx, TermId T) -> std::optional<TermId> {
    // mskbl(0, i) = 0.
    const ir::TermNode &N = Ctx.Terms.node(T);
    if (N.Op != Ctx.Ops.builtin(Builtin::Mskbl))
      return std::nullopt;
    std::optional<uint64_t> K = constOf(Ctx, N.Children[0]);
    if (K && *K == 0)
      return Ctx.Terms.makeConst(0);
    return std::nullopt;
  });
  add("zext-to-zapnot", [](ir::Context &Ctx, TermId T) -> std::optional<TermId> {
    const ir::TermNode &N = Ctx.Terms.node(T);
    Builtin B = Ctx.Ops.builtinOf(N.Op);
    uint64_t Mask;
    if (B == Builtin::Zext8)
      Mask = 0x1;
    else if (B == Builtin::Zext16)
      Mask = 0x3;
    else if (B == Builtin::Zext32)
      Mask = 0xf;
    else
      return std::nullopt;
    return Ctx.Terms.makeBuiltin(
        Builtin::Zapnot, {N.Children[0], Ctx.Terms.makeConst(Mask)});
  });
  add("sext-to-shifts", [](ir::Context &Ctx, TermId T) -> std::optional<TermId> {
    const ir::TermNode &N = Ctx.Terms.node(T);
    Builtin B = Ctx.Ops.builtinOf(N.Op);
    uint64_t Amount;
    if (B == Builtin::Sext8)
      Amount = 56;
    else if (B == Builtin::Sext16)
      Amount = 48;
    else if (B == Builtin::Sext32)
      Amount = 32;
    else
      return std::nullopt;
    TermId L = Ctx.Terms.makeBuiltin(
        Builtin::Shl64, {N.Children[0], Ctx.Terms.makeConst(Amount)});
    return Ctx.Terms.makeBuiltin(Builtin::Sar64,
                                 {L, Ctx.Terms.makeConst(Amount)});
  });
  // pow is a specification-only operator; expand 2**k to a literal.
  add("pow-expand", [](ir::Context &Ctx, TermId T) -> std::optional<TermId> {
    const ir::TermNode &N = Ctx.Terms.node(T);
    if (N.Op != Ctx.Ops.builtin(Builtin::Pow))
      return std::nullopt;
    std::optional<uint64_t> B = constOf(Ctx, N.Children[0]);
    std::optional<uint64_t> E = constOf(Ctx, N.Children[1]);
    if (B && E) {
      std::optional<ir::Value> V = ir::evalTerm(Ctx.Terms, T, {});
      if (V && V->isInt())
        return Ctx.Terms.makeConst(V->asInt());
    }
    return std::nullopt;
  });
  return Rules;
}

} // namespace

unsigned denali::baseline::termCost(ir::Context &Ctx, const machine::MachineModel &Isa,
                                    ir::TermId T) {
  std::unordered_set<TermId> Seen;
  unsigned Cost = 0;
  std::vector<TermId> Work{T};
  while (!Work.empty()) {
    TermId Id = Work.back();
    Work.pop_back();
    if (!Seen.insert(Id).second)
      continue;
    const ir::TermNode &N = Ctx.Terms.node(Id);
    if (Ctx.Ops.isConst(N.Op)) {
      Cost += N.ConstVal > 255 ? 1 : 0; // Large literals need a ldiq.
      continue;
    }
    if (Ctx.Ops.isVariable(N.Op))
      continue;
    const alpha::InstrDesc *Desc = Isa.descFor(N.Op);
    Cost += Desc ? Desc->Latency : 1000; // Non-machine: effectively banned.
    for (TermId C : N.Children)
      Work.push_back(C);
  }
  return Cost;
}

RewriteResult denali::baseline::greedyRewrite(ir::Context &Ctx,
                                              const machine::MachineModel &Isa,
                                              ir::TermId T) {
  static const std::vector<Rule> Rules = buildRules();
  RewriteResult Result;

  std::function<TermId(TermId)> RewriteOnce = [&](TermId Id) -> TermId {
    const ir::TermNode &N = Ctx.Terms.node(Id);
    // Innermost first: rebuild with rewritten children.
    bool Changed = false;
    std::vector<TermId> Children;
    for (TermId C : N.Children) {
      TermId NC = RewriteOnce(C);
      Changed |= NC != C;
      Children.push_back(NC);
    }
    TermId Cur =
        Changed ? (Ctx.Ops.isConst(N.Op) ? Id
                                         : Ctx.Terms.make(N.Op, Children))
                : Id;
    // Greedily take the first cost-improving (or penalty-removing) rule.
    for (;;) {
      unsigned CurCost = termCost(Ctx, Isa, Cur);
      std::optional<TermId> Next;
      const char *Applied = nullptr;
      for (const Rule &R : Rules) {
        std::optional<TermId> Candidate = R.Apply(Ctx, Cur);
        if (!Candidate || *Candidate == Cur)
          continue;
        if (termCost(Ctx, Isa, *Candidate) < CurCost) {
          Next = Candidate;
          Applied = R.Name;
          break;
        }
      }
      if (!Next)
        break;
      Cur = *Next;
      ++Result.Steps;
      Result.RulesApplied.push_back(Applied);
      // The replacement's subterms may enable further local rewrites.
      Cur = RewriteOnce(Cur);
    }
    return Cur;
  };

  Result.Term = RewriteOnce(T);
  return Result;
}
