//===- baseline/Rewriter.h - Greedy rewriting engine ------------*- C++ -*-===//
///
/// \file
/// Baseline 2: a conventional cost-directed rewriting engine of the kind
/// section 5 contrasts with the E-graph. It rewrites terms bottom-up
/// (innermost first), greedily applying the first strictly-cost-improving
/// rule, and never keeps both sides of an equality around.
///
/// This reproduces the paper's phase-ordering observation: on reg6*4 + 1
/// the engine happily improves reg6*4 into reg6<<2 — after which the
/// s4addl pattern (k*4 + n) can no longer match, so the optimal
/// single-instruction form is missed. Denali's E-graph, which records
/// equalities instead of rewriting, finds it (bench_rewriter, E10).
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_BASELINE_REWRITER_H
#define DENALI_BASELINE_REWRITER_H

#include "alpha/ISA.h"
#include "ir/Term.h"

#include <string>
#include <vector>

namespace denali {
namespace baseline {

struct RewriteResult {
  ir::TermId Term = 0;
  unsigned Steps = 0;
  std::vector<std::string> RulesApplied;
};

/// Latency-sum cost of \p T over its (shared) DAG; non-machine operators
/// cost a large penalty, constants needing materialization cost 1.
unsigned termCost(ir::Context &Ctx, const machine::MachineModel &Isa, ir::TermId T);

/// Greedily rewrites \p T to a (locally) cheaper form.
RewriteResult greedyRewrite(ir::Context &Ctx, const machine::MachineModel &Isa,
                            ir::TermId T);

} // namespace baseline
} // namespace denali

#endif // DENALI_BASELINE_REWRITER_H
