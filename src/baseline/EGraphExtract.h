//===- baseline/EGraphExtract.h - Equality-saturation extraction -*- C++ -*-===//
///
/// \file
/// Baseline 4: *modern* equality saturation as practiced after Denali
/// (egg-style): saturate the same E-graph, but instead of handing all
/// alternatives to a SAT scheduler, extract one best term by dynamic
/// programming over a local cost model (latency sum), then list-schedule
/// it. This isolates Denali's distinctive contribution — the *scheduling-
/// aware global selection* — from the E-graph itself: cost-based
/// extraction does not know about issue slots, clusters, or latency
/// overlap, so it ties Denali on expression *size* but loses on schedule
/// length whenever overlap or unit pressure matters.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_BASELINE_EGRAPHEXTRACT_H
#define DENALI_BASELINE_EGRAPHEXTRACT_H

#include "alpha/Assembly.h"
#include "alpha/ISA.h"
#include "egraph/EGraph.h"
#include "ir/Term.h"

#include <optional>
#include <string>

namespace denali {
namespace baseline {

/// DP extraction result for one class.
struct ExtractResult {
  ir::TermId Term = 0;
  unsigned Cost = 0; ///< Latency-sum cost under the model used.
};

/// Extracts the minimum-latency-sum term for \p Root from a saturated
/// E-graph (egg-style). \returns std::nullopt if the class has no term
/// over machine operations (e.g. a declared operator with no axioms).
std::optional<ExtractResult> extractBestTerm(const egraph::EGraph &G,
                                             const machine::MachineModel &Isa,
                                             egraph::ClassId Root);

/// Full pipeline of the equality-saturation baseline: extract best terms
/// for the goals, then list-schedule them with the naive code generator.
std::optional<alpha::Program> extractAndSchedule(
    egraph::EGraph &G, const machine::MachineModel &Isa,
    const std::vector<std::pair<std::string, egraph::ClassId>> &Goals,
    const std::string &Name, std::string *ErrorOut);

} // namespace baseline
} // namespace denali

#endif // DENALI_BASELINE_EGRAPHEXTRACT_H
