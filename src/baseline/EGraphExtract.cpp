//===- baseline/EGraphExtract.cpp -----------------------------------------===//

#include "baseline/EGraphExtract.h"

#include "baseline/TreeCodegen.h"
#include "support/StringExtras.h"

#include <functional>
#include <unordered_map>

using namespace denali;
using namespace denali::baseline;
using namespace denali::egraph;

namespace {

constexpr unsigned Infinity = ~0u;

/// Per-node cost under the local model: instruction latency; leaves free
/// (inputs, literal-slot constants); large constants pay the ldiq.
unsigned opCost(const ir::Context &Ctx, const machine::MachineModel &Isa,
                const ENode &N) {
  const ir::OpInfo &Info = Ctx.Ops.info(N.Op);
  if (Info.BuiltinOp == ir::Builtin::Const)
    return N.ConstVal > 255 ? 1 : 0;
  if (Info.Kind == ir::OpKind::Variable)
    return 0;
  const alpha::InstrDesc *Desc = Isa.descFor(N.Op);
  return Desc ? Desc->Latency : Infinity;
}

} // namespace

std::optional<ExtractResult>
denali::baseline::extractBestTerm(const EGraph &G, const machine::MachineModel &Isa,
                                  ClassId Root) {
  const ir::Context &Ctx = G.context();

  // DP to fixpoint: cost[class] = min over nodes of
  // opCost(node) + sum cost[child].
  std::unordered_map<ClassId, unsigned> Cost;
  std::unordered_map<ClassId, ENodeId> Best;
  std::vector<std::pair<ClassId, ENodeId>> Live;
  for (ClassId C : G.canonicalClasses())
    for (ENodeId N : G.classNodes(C))
      Live.emplace_back(C, N);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto &[C, NId] : Live) {
      const ENode &N = G.node(NId);
      unsigned NodeCost = opCost(Ctx, Isa, N);
      if (NodeCost == Infinity)
        continue;
      uint64_t Total = NodeCost;
      bool Ok = true;
      for (ClassId Child : N.Children) {
        auto It = Cost.find(G.find(Child));
        if (It == Cost.end()) {
          Ok = false;
          break;
        }
        Total += It->second;
      }
      if (!Ok || Total >= Infinity)
        continue;
      auto It = Cost.find(C);
      if (It == Cost.end() || Total < It->second) {
        Cost[C] = static_cast<unsigned>(Total);
        Best[C] = NId;
        Changed = true;
      }
    }
  }

  ClassId R = G.find(Root);
  if (!Cost.count(R))
    return std::nullopt;

  // Build the term for the chosen nodes (costs strictly decrease downward
  // except through zero-cost leaves, so this recursion terminates).
  std::unordered_map<ClassId, ir::TermId> Memo;
  // The context is logically mutable for term interning here; extraction
  // is a builder, not an analysis.
  ir::Context &MutCtx = const_cast<ir::Context &>(Ctx);
  std::function<ir::TermId(ClassId)> Build = [&](ClassId C) -> ir::TermId {
    C = G.find(C);
    auto MIt = Memo.find(C);
    if (MIt != Memo.end())
      return MIt->second;
    const ENode &N = G.node(Best.at(C));
    ir::TermId T;
    if (Ctx.Ops.isConst(N.Op)) {
      T = MutCtx.Terms.makeConst(N.ConstVal);
    } else {
      std::vector<ir::TermId> Children;
      for (ClassId Child : N.Children)
        Children.push_back(Build(Child));
      T = MutCtx.Terms.make(N.Op, Children);
    }
    Memo.emplace(C, T);
    return T;
  };
  ExtractResult Out;
  Out.Term = Build(R);
  Out.Cost = Cost.at(R);
  return Out;
}

std::optional<alpha::Program> denali::baseline::extractAndSchedule(
    EGraph &G, const machine::MachineModel &Isa,
    const std::vector<std::pair<std::string, ClassId>> &Goals,
    const std::string &Name, std::string *ErrorOut) {
  std::vector<std::pair<std::string, ir::TermId>> Terms;
  for (const auto &[Target, Class] : Goals) {
    std::optional<ExtractResult> R = extractBestTerm(G, Isa, Class);
    if (!R) {
      if (ErrorOut)
        *ErrorOut = strFormat("class c%u has no machine-term extraction",
                              G.find(Class));
      return std::nullopt;
    }
    Terms.emplace_back(Target, R->Term);
  }
  return naiveCodegen(G.context(), Isa, Terms, Name, ErrorOut);
}
