//===- ir/Term.cpp --------------------------------------------------------===//

#include "ir/Term.h"

#include "support/Error.h"
#include "support/StringExtras.h"

#include <cassert>

using namespace denali;
using namespace denali::ir;

TermId TermTable::intern(Key K) {
  auto It = Interned.find(K);
  if (It != Interned.end())
    return It->second;
  TermId Id = static_cast<TermId>(Nodes.size());
  Nodes.push_back(TermNode{K.Op, K.Children, K.ConstVal});
  Interned.emplace(std::move(K), Id);
  return Id;
}

TermId TermTable::make(OpId Op, const std::vector<TermId> &Children) {
  const OpInfo &Info = Ops.info(Op);
  assert(static_cast<size_t>(Info.Arity) == Children.size() &&
         "arity mismatch");
  (void)Info;
  return intern(Key{Op, Children, 0});
}

TermId TermTable::makeConst(uint64_t Value) {
  return intern(Key{Ops.builtin(Builtin::Const), {}, Value});
}

TermId TermTable::makeVar(const std::string &Name) {
  OpId Op = Ops.makeVariable(Name);
  return intern(Key{Op, {}, 0});
}

const TermNode &TermTable::node(TermId Id) const {
  assert(Id < Nodes.size() && "bad TermId");
  return Nodes[Id];
}

TermId TermTable::substitute(TermId Root,
                             const std::unordered_map<OpId, TermId> &Subst) {
  std::unordered_map<TermId, TermId> Memo;
  // Iterative post-order to avoid deep recursion on large unrolled terms.
  std::vector<std::pair<TermId, bool>> Stack;
  Stack.push_back({Root, false});
  while (!Stack.empty()) {
    auto [Id, Expanded] = Stack.back();
    Stack.pop_back();
    if (Memo.count(Id))
      continue;
    const TermNode &N = Nodes[Id];
    if (!Expanded) {
      if (N.Children.empty()) {
        auto It = Subst.find(N.Op);
        Memo[Id] = It == Subst.end() ? Id : It->second;
        continue;
      }
      Stack.push_back({Id, true});
      for (TermId C : N.Children)
        Stack.push_back({C, false});
      continue;
    }
    std::vector<TermId> NewChildren;
    NewChildren.reserve(N.Children.size());
    bool Changed = false;
    for (TermId C : N.Children) {
      TermId NC = Memo.at(C);
      Changed |= NC != C;
      NewChildren.push_back(NC);
    }
    Memo[Id] = Changed ? make(N.Op, NewChildren) : Id;
  }
  return Memo.at(Root);
}

std::string TermTable::toString(TermId Id) const {
  const TermNode &N = node(Id);
  const OpInfo &Info = Ops.info(N.Op);
  if (Info.BuiltinOp == Builtin::Const)
    return formatConstant(N.ConstVal);
  if (N.Children.empty())
    return Info.Name;
  std::string Out = "(" + Info.Name;
  for (TermId C : N.Children) {
    Out += ' ';
    Out += toString(C);
  }
  Out += ')';
  return Out;
}
