//===- ir/Ops.cpp ---------------------------------------------------------===//

#include "ir/Ops.h"

#include "support/Error.h"
#include "support/StringExtras.h"

#include <cassert>

using namespace denali;
using namespace denali::ir;

namespace {

struct BuiltinDesc {
  Builtin B;
  const char *Name;
  int Arity;
  bool Commutative;
};

// Names follow the paper where the paper names the function (add64, selectb,
// extbl, ...). `**` is spelled `pow` in source syntax but also answers to
// the name `**`.
const BuiltinDesc BuiltinDescs[] = {
    {Builtin::Const, "#const", 0, false},
    {Builtin::Add64, "add64", 2, true},
    {Builtin::Sub64, "sub64", 2, false},
    {Builtin::Mul64, "mul64", 2, true},
    {Builtin::Neg64, "neg64", 1, false},
    {Builtin::Umulh, "umulh", 2, true},
    {Builtin::And64, "and64", 2, true},
    {Builtin::Or64, "or64", 2, true},
    {Builtin::Xor64, "xor64", 2, true},
    {Builtin::Not64, "not64", 1, false},
    {Builtin::Bic64, "bic64", 2, false},
    {Builtin::Ornot64, "ornot64", 2, false},
    {Builtin::Eqv64, "eqv64", 2, true},
    {Builtin::Shl64, "shl64", 2, false},
    {Builtin::Shr64, "shr64", 2, false},
    {Builtin::Sar64, "sar64", 2, false},
    {Builtin::Pow, "pow", 2, false},
    {Builtin::CmpEq, "cmpeq", 2, true},
    {Builtin::CmpUlt, "cmpult", 2, false},
    {Builtin::CmpUle, "cmpule", 2, false},
    {Builtin::CmpLt, "cmplt", 2, false},
    {Builtin::CmpLe, "cmple", 2, false},
    {Builtin::Select, "select", 2, false},
    {Builtin::Store, "store", 3, false},
    {Builtin::SelectB, "selectb", 2, false},
    {Builtin::StoreB, "storeb", 3, false},
    {Builtin::SelectW, "selectw", 2, false},
    {Builtin::StoreW, "storew", 3, false},
    {Builtin::Zext8, "zext8", 1, false},
    {Builtin::Zext16, "zext16", 1, false},
    {Builtin::Zext32, "zext32", 1, false},
    {Builtin::Sext8, "sext8", 1, false},
    {Builtin::Sext16, "sext16", 1, false},
    {Builtin::Sext32, "sext32", 1, false},
    {Builtin::Extbl, "extbl", 2, false},
    {Builtin::Extwl, "extwl", 2, false},
    {Builtin::Insbl, "insbl", 2, false},
    {Builtin::Inswl, "inswl", 2, false},
    {Builtin::Mskbl, "mskbl", 2, false},
    {Builtin::Mskwl, "mskwl", 2, false},
    {Builtin::Zapnot, "zapnot", 2, false},
    {Builtin::S4Addl, "s4addl", 2, false},
    {Builtin::S8Addl, "s8addl", 2, false},
    {Builtin::S4Subl, "s4subl", 2, false},
    {Builtin::S8Subl, "s8subl", 2, false},
    {Builtin::CmovEq, "cmoveq", 3, false},
    {Builtin::CmovNe, "cmovne", 3, false},
    {Builtin::CmovLt, "cmovlt", 3, false},
    {Builtin::CmovGe, "cmovge", 3, false},
};

} // namespace

OpTable::OpTable() {
  for (const BuiltinDesc &D : BuiltinDescs) {
    OpInfo Info;
    Info.Name = D.Name;
    Info.Arity = D.Arity;
    Info.Kind = OpKind::Builtin;
    Info.BuiltinOp = D.B;
    Info.Commutative = D.Commutative;
    OpId Id = addOp(std::move(Info));
    BuiltinIds[static_cast<size_t>(D.B)] = Id;
  }
  // Aliases used in axiom files and by the paper's notation.
  ByName["+"] = builtin(Builtin::Add64);
  ByName["-"] = builtin(Builtin::Sub64);
  ByName["*"] = builtin(Builtin::Mul64);
  ByName["**"] = builtin(Builtin::Pow);
  ByName["<<"] = builtin(Builtin::Shl64);
  ByName[">>"] = builtin(Builtin::Shr64);
  ByName["<"] = builtin(Builtin::CmpLt);
  ByName["<="] = builtin(Builtin::CmpLe);
  ByName["and"] = builtin(Builtin::And64);
  ByName["or"] = builtin(Builtin::Or64);
  ByName["bis"] = builtin(Builtin::Or64);
  ByName["xor"] = builtin(Builtin::Xor64);
  ByName["not"] = builtin(Builtin::Not64);
  ByName["bic"] = builtin(Builtin::Bic64);
  ByName["ornot"] = builtin(Builtin::Ornot64);
  ByName["eqv"] = builtin(Builtin::Eqv64);
  ByName["sll"] = builtin(Builtin::Shl64);
  ByName["srl"] = builtin(Builtin::Shr64);
  ByName["sra"] = builtin(Builtin::Sar64);
  ByName["addq"] = builtin(Builtin::Add64);
  ByName["subq"] = builtin(Builtin::Sub64);
  ByName["mulq"] = builtin(Builtin::Mul64);
}

OpId OpTable::addOp(OpInfo Info) {
  OpId Id = static_cast<OpId>(Infos.size());
  auto It = ByName.find(Info.Name);
  if (It != ByName.end())
    reportFatalError(strFormat("duplicate operator '%s'", Info.Name.c_str()));
  ByName.emplace(Info.Name, Id);
  Infos.push_back(std::move(Info));
  return Id;
}

OpId OpTable::builtin(Builtin B) const {
  assert(B != Builtin::None && B != Builtin::NumBuiltins && "bad builtin");
  return BuiltinIds[static_cast<size_t>(B)];
}

OpId OpTable::makeVariable(const std::string &Name) {
  auto It = ByName.find(Name);
  if (It != ByName.end()) {
    const OpInfo &Existing = info(It->second);
    if (Existing.Kind != OpKind::Variable)
      reportFatalError(
          strFormat("'%s' already names a non-variable", Name.c_str()));
    return It->second;
  }
  OpInfo Info;
  Info.Name = Name;
  Info.Arity = 0;
  Info.Kind = OpKind::Variable;
  return addOp(std::move(Info));
}

OpId OpTable::declareOp(const std::string &Name, int Arity) {
  auto It = ByName.find(Name);
  if (It != ByName.end()) {
    const OpInfo &Existing = info(It->second);
    if (Existing.Arity != Arity)
      reportFatalError(strFormat("operator '%s' redeclared with arity %d "
                                 "(was %d)",
                                 Name.c_str(), Arity, Existing.Arity));
    return It->second;
  }
  OpInfo Info;
  Info.Name = Name;
  Info.Arity = Arity;
  Info.Kind = OpKind::Declared;
  return addOp(std::move(Info));
}

std::optional<OpId> OpTable::lookup(const std::string &Name) const {
  auto It = ByName.find(Name);
  if (It == ByName.end())
    return std::nullopt;
  return It->second;
}

const OpInfo &OpTable::info(OpId Id) const {
  assert(Id < Infos.size() && "bad OpId");
  return Infos[Id];
}
