//===- ir/Eval.h - Reference evaluation of terms ----------------*- C++ -*-===//
///
/// \file
/// The reference evaluator gives each term a meaning as a function of an
/// environment binding the term's variables to Values. It is the semantic
/// ground truth of the whole system: the matcher's constant folder, the
/// soundness property tests, and the end-to-end differential tests all
/// evaluate through it.
///
/// Declared operators (\opdecl) have no builtin semantics; if a program
/// supplies a *definitional* axiom (f(x1..xn) = body over evaluable ops),
/// it can be registered here so such terms remain evaluable.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_IR_EVAL_H
#define DENALI_IR_EVAL_H

#include "ir/Term.h"
#include "ir/Value.h"

#include <optional>
#include <unordered_map>

namespace denali {
namespace ir {

/// Applies builtin \p B to integer arguments \p Args (all semantics are on
/// 64-bit words). Array-typed builtins (select/store) are handled by
/// evalBuiltin below; this entry point asserts on them.
uint64_t evalBuiltinInt(Builtin B, const std::vector<uint64_t> &Args);

/// Applies builtin \p B to \p Args. \returns std::nullopt on a kind error
/// (e.g. selecting from an integer), which signals an ill-typed term.
std::optional<Value> evalBuiltin(Builtin B, const std::vector<Value> &Args);

/// An environment binds variable operators to values.
using Env = std::unordered_map<OpId, Value>;

/// A registered expansion for a declared operator: f(Params...) = Body.
struct OpDefinition {
  std::vector<OpId> Params; ///< Variable ops, in argument order.
  TermId Body = 0;
};

/// Expansions for declared operators, harvested from definitional axioms.
using Definitions = std::unordered_map<OpId, OpDefinition>;

/// Evaluates \p Term under \p Bindings. \returns std::nullopt if the term
/// mentions an unbound variable, an undefined declared operator, or is
/// ill-typed; \p ErrorOut (if non-null) receives a description.
std::optional<Value> evalTerm(const TermTable &Terms, TermId Term,
                              const Env &Bindings,
                              const Definitions *Defs = nullptr,
                              std::string *ErrorOut = nullptr);

} // namespace ir
} // namespace denali

#endif // DENALI_IR_EVAL_H
