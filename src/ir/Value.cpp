//===- ir/Value.cpp -------------------------------------------------------===//

#include "ir/Value.h"

#include "support/StringExtras.h"

#include <cassert>

using namespace denali;
using namespace denali::ir;

uint64_t ArrayData::baseAt(uint64_t Index) const {
  // splitmix64-style mix of (Seed, Index); deterministic and well spread.
  uint64_t Z = Seed + 0x9e3779b97f4a7c15ULL * (Index + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

Value Value::makeInt(uint64_t V) {
  Value Out;
  Out.TheKind = Kind::Int;
  Out.Int = V;
  return Out;
}

Value Value::makeArray(uint64_t Seed) {
  Value Out;
  Out.TheKind = Kind::Array;
  auto Data = std::make_shared<ArrayData>();
  Data->Seed = Seed;
  Out.Arr = std::move(Data);
  return Out;
}

uint64_t Value::asInt() const {
  assert(isInt() && "not an integer value");
  return Int;
}

uint64_t Value::select(uint64_t Index) const {
  assert(isArray() && "not an array value");
  auto It = Arr->Overlay.find(Index);
  if (It != Arr->Overlay.end())
    return It->second;
  return Arr->baseAt(Index);
}

Value Value::store(uint64_t Index, uint64_t Elem) const {
  assert(isArray() && "not an array value");
  auto Data = std::make_shared<ArrayData>(*Arr);
  if (Data->baseAt(Index) == Elem)
    Data->Overlay.erase(Index);
  else
    Data->Overlay[Index] = Elem;
  Value Out;
  Out.TheKind = Kind::Array;
  Out.Arr = std::move(Data);
  return Out;
}

bool Value::equals(const Value &O) const {
  if (TheKind != O.TheKind)
    return false;
  if (TheKind == Kind::Int)
    return Int == O.Int;
  return Arr->Seed == O.Arr->Seed && Arr->Overlay == O.Arr->Overlay;
}

std::string Value::toString() const {
  if (isInt())
    return formatConstant(Int);
  return strFormat("array(seed=%llu, %zu writes)",
                   static_cast<unsigned long long>(Arr->Seed),
                   Arr->Overlay.size());
}
