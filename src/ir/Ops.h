//===- ir/Ops.h - Operator table --------------------------------*- C++ -*-===//
///
/// \file
/// The operator universe of Denali terms. Operators come in three flavors:
///
///  * \b builtin operators with fixed semantics (add64, selectb, extbl, ...)
///    shared by the reference evaluator, the matcher's constant folder, and
///    the Alpha functional simulator;
///  * \b variables (arity-0 operators standing for the inputs of a GMA:
///    registers, the memory array M, ...);
///  * \b declared operators introduced by a program's \opdecl forms (e.g.
///    the checksum program's local `add` and `carry`); these have no fixed
///    semantics and are given meaning only by axioms.
///
/// Whether an operator is a *machine operation* (computable by one target
/// instruction) is not recorded here; that is a property of the target and
/// lives in alpha::ISA.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_IR_OPS_H
#define DENALI_IR_OPS_H

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace denali {
namespace ir {

/// Dense operator identifier (index into the OpTable).
using OpId = uint32_t;

/// Builtin operators with fixed 64-bit semantics. `Builtin::None` marks
/// variables and declared operators.
enum class Builtin : uint16_t {
  None = 0,
  Const, ///< Nullary; the constant's value is stored on the term/node.

  // 64-bit arithmetic (modulo 2^64).
  Add64,
  Sub64,
  Mul64,
  Neg64,
  Umulh, ///< High 64 bits of the unsigned 128-bit product.

  // Bitwise logic.
  And64,
  Or64,
  Xor64,
  Not64,
  Bic64,   ///< and-not: bic(x, y) = x & ~y
  Ornot64, ///< or-not:  ornot(x, y) = x | ~y
  Eqv64,   ///< xor-not: eqv(x, y) = ~(x ^ y)

  // Shifts (count taken modulo 64, as on the Alpha).
  Shl64,
  Shr64, ///< Logical right shift.
  Sar64, ///< Arithmetic right shift.

  // Exponentiation; a *non-machine* operation used in axioms like
  // k * 2**n = k << n (paper, section 5).
  Pow,

  // Comparisons (result 0 or 1, as on the Alpha).
  CmpEq,
  CmpUlt,
  CmpUle,
  CmpLt, ///< Signed.
  CmpLe, ///< Signed.

  // Arrays as values (memory). Addresses index 64-bit words.
  Select,
  Store,

  // Integers as arrays of bytes / 16-bit words (paper, section 4).
  SelectB, ///< selectb(w, i) = byte i of w.
  StoreB,  ///< storeb(w, i, x) = w with byte i replaced by low byte of x.
  SelectW, ///< selectw(w, i) = 16-bit field of w at byte offset i.
  StoreW,

  // Zero/sign extensions of low fields.
  Zext8,
  Zext16,
  Zext32,
  Sext8,
  Sext16,
  Sext32,

  // Alpha byte-manipulation instructions (section 4's examples).
  Extbl, ///< extbl(w, i) = selectb(w, i)
  Extwl, ///< extwl(w, i) = selectw(w, i)
  Insbl, ///< insbl(w, i) = (w & 0xff) << 8i
  Inswl,
  Mskbl, ///< mskbl(w, i) = storeb(w, i, 0)
  Mskwl,
  Zapnot, ///< zapnot(w, m) = keep bytes selected by the low 8 bits of m.

  // Scaled add/subtract (the paper's s4addl example).
  S4Addl,
  S8Addl,
  S4Subl,
  S8Subl,

  // Conditional moves: cmovXX(cond, val, old) = XX(cond) ? val : old.
  CmovEq,
  CmovNe,
  CmovLt,
  CmovGe,

  NumBuiltins
};

/// Classifies an operator.
enum class OpKind : uint8_t {
  Builtin,  ///< Fixed semantics (see Builtin).
  Variable, ///< GMA input (register, memory array, parameter).
  Declared  ///< Introduced by \opdecl; semantics only via axioms.
};

/// Static information about one operator.
struct OpInfo {
  std::string Name;
  int Arity = 0;
  OpKind Kind = OpKind::Builtin;
  Builtin BuiltinOp = Builtin::None;
  bool Commutative = false; ///< Used only for printing/statistics; algebraic
                            ///< properties enter the system via axioms.
};

/// Owns all operators of one superoptimization context and provides
/// name-based lookup. OpIds are stable for the table's lifetime.
class OpTable {
public:
  OpTable();

  /// \returns the OpId of builtin \p B.
  OpId builtin(Builtin B) const;

  /// Declares (or returns the existing) variable named \p Name.
  OpId makeVariable(const std::string &Name);

  /// Declares an operator via \opdecl. Fails fatally if \p Name clashes with
  /// an existing operator of a different arity or kind.
  OpId declareOp(const std::string &Name, int Arity);

  /// Name-based lookup. \returns std::nullopt if unknown.
  std::optional<OpId> lookup(const std::string &Name) const;

  const OpInfo &info(OpId Id) const;
  size_t size() const { return Infos.size(); }

  bool isVariable(OpId Id) const { return info(Id).Kind == OpKind::Variable; }
  bool isConst(OpId Id) const { return info(Id).BuiltinOp == Builtin::Const; }
  Builtin builtinOf(OpId Id) const { return info(Id).BuiltinOp; }

private:
  std::vector<OpInfo> Infos;
  std::unordered_map<std::string, OpId> ByName;
  OpId BuiltinIds[static_cast<size_t>(Builtin::NumBuiltins)] = {};

  OpId addOp(OpInfo Info);
};

} // namespace ir
} // namespace denali

#endif // DENALI_IR_OPS_H
