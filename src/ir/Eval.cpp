//===- ir/Eval.cpp --------------------------------------------------------===//

#include "ir/Eval.h"

#include "support/Error.h"
#include "support/StringExtras.h"

#include <cassert>

using namespace denali;
using namespace denali::ir;

namespace {

uint64_t byteField(uint64_t W, uint64_t I) { return (W >> (8 * (I & 7))); }

uint64_t insertField(uint64_t W, uint64_t I, uint64_t X, uint64_t Mask) {
  uint64_t Shift = 8 * (I & 7);
  uint64_t Hole = ~(Mask << Shift);
  return (W & Hole) | ((X & Mask) << Shift);
}

uint64_t zapnotImpl(uint64_t W, uint64_t M) {
  uint64_t Out = 0;
  for (unsigned ByteIdx = 0; ByteIdx < 8; ++ByteIdx)
    if ((M >> ByteIdx) & 1)
      Out |= W & (0xffULL << (8 * ByteIdx));
  return Out;
}

uint64_t powImpl(uint64_t Base, uint64_t Exp) {
  // The exponent is taken modulo 64, mirroring the shifter's count
  // semantics: pow exists to state k * 2**n = k << n (Figure 2), and that
  // identity must hold for every n under sll's mod-64 count.
  uint64_t Out = 1;
  uint64_t B = Base;
  uint64_t E = Exp & 63;
  while (E) {
    if (E & 1)
      Out *= B;
    B *= B;
    E >>= 1;
  }
  return Out;
}

int64_t asSigned(uint64_t V) { return static_cast<int64_t>(V); }

} // namespace

uint64_t denali::ir::evalBuiltinInt(Builtin B,
                                    const std::vector<uint64_t> &Args) {
  auto A = [&](size_t I) {
    assert(I < Args.size() && "missing argument");
    return Args[I];
  };
  switch (B) {
  case Builtin::Add64:
    return A(0) + A(1);
  case Builtin::Sub64:
    return A(0) - A(1);
  case Builtin::Mul64:
    return A(0) * A(1);
  case Builtin::Neg64:
    return 0 - A(0);
  case Builtin::Umulh:
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(A(0)) * A(1)) >> 64);
  case Builtin::And64:
    return A(0) & A(1);
  case Builtin::Or64:
    return A(0) | A(1);
  case Builtin::Xor64:
    return A(0) ^ A(1);
  case Builtin::Not64:
    return ~A(0);
  case Builtin::Bic64:
    return A(0) & ~A(1);
  case Builtin::Ornot64:
    return A(0) | ~A(1);
  case Builtin::Eqv64:
    return ~(A(0) ^ A(1));
  case Builtin::Shl64:
    return A(0) << (A(1) & 63);
  case Builtin::Shr64:
    return A(0) >> (A(1) & 63);
  case Builtin::Sar64:
    return static_cast<uint64_t>(asSigned(A(0)) >> (A(1) & 63));
  case Builtin::Pow:
    return powImpl(A(0), A(1));
  case Builtin::CmpEq:
    return A(0) == A(1) ? 1 : 0;
  case Builtin::CmpUlt:
    return A(0) < A(1) ? 1 : 0;
  case Builtin::CmpUle:
    return A(0) <= A(1) ? 1 : 0;
  case Builtin::CmpLt:
    return asSigned(A(0)) < asSigned(A(1)) ? 1 : 0;
  case Builtin::CmpLe:
    return asSigned(A(0)) <= asSigned(A(1)) ? 1 : 0;
  case Builtin::SelectB:
    return byteField(A(0), A(1)) & 0xff;
  case Builtin::StoreB:
    return insertField(A(0), A(1), A(2), 0xff);
  case Builtin::SelectW:
    return byteField(A(0), A(1)) & 0xffff;
  case Builtin::StoreW:
    return insertField(A(0), A(1), A(2), 0xffff);
  case Builtin::Zext8:
    return A(0) & 0xff;
  case Builtin::Zext16:
    return A(0) & 0xffff;
  case Builtin::Zext32:
    return A(0) & 0xffffffffULL;
  case Builtin::Sext8:
    return static_cast<uint64_t>(static_cast<int64_t>(
        static_cast<int8_t>(A(0) & 0xff)));
  case Builtin::Sext16:
    return static_cast<uint64_t>(static_cast<int64_t>(
        static_cast<int16_t>(A(0) & 0xffff)));
  case Builtin::Sext32:
    return static_cast<uint64_t>(static_cast<int64_t>(
        static_cast<int32_t>(A(0) & 0xffffffffULL)));
  case Builtin::Extbl:
    return byteField(A(0), A(1)) & 0xff;
  case Builtin::Extwl:
    return byteField(A(0), A(1)) & 0xffff;
  case Builtin::Insbl:
    return (A(0) & 0xff) << (8 * (A(1) & 7));
  case Builtin::Inswl:
    return (A(0) & 0xffff) << (8 * (A(1) & 7));
  case Builtin::Mskbl:
    return insertField(A(0), A(1), 0, 0xff);
  case Builtin::Mskwl:
    return insertField(A(0), A(1), 0, 0xffff);
  case Builtin::Zapnot:
    return zapnotImpl(A(0), A(1) & 0xff);
  case Builtin::S4Addl:
    return A(0) * 4 + A(1);
  case Builtin::S8Addl:
    return A(0) * 8 + A(1);
  case Builtin::S4Subl:
    return A(0) * 4 - A(1);
  case Builtin::S8Subl:
    return A(0) * 8 - A(1);
  case Builtin::CmovEq:
    return A(0) == 0 ? A(1) : A(2);
  case Builtin::CmovNe:
    return A(0) != 0 ? A(1) : A(2);
  case Builtin::CmovLt:
    return asSigned(A(0)) < 0 ? A(1) : A(2);
  case Builtin::CmovGe:
    return asSigned(A(0)) >= 0 ? A(1) : A(2);
  case Builtin::None:
  case Builtin::Const:
  case Builtin::Select:
  case Builtin::Store:
  case Builtin::NumBuiltins:
    break;
  }
  DENALI_UNREACHABLE("evalBuiltinInt: not an integer builtin");
}

std::optional<Value> denali::ir::evalBuiltin(Builtin B,
                                             const std::vector<Value> &Args) {
  switch (B) {
  case Builtin::Select: {
    if (Args.size() != 2 || !Args[0].isArray() || !Args[1].isInt())
      return std::nullopt;
    return Value::makeInt(Args[0].select(Args[1].asInt()));
  }
  case Builtin::Store: {
    if (Args.size() != 3 || !Args[0].isArray() || !Args[1].isInt() ||
        !Args[2].isInt())
      return std::nullopt;
    return Args[0].store(Args[1].asInt(), Args[2].asInt());
  }
  default: {
    std::vector<uint64_t> Ints;
    Ints.reserve(Args.size());
    for (const Value &V : Args) {
      if (!V.isInt())
        return std::nullopt;
      Ints.push_back(V.asInt());
    }
    return Value::makeInt(evalBuiltinInt(B, Ints));
  }
  }
}

namespace {

class Evaluator {
public:
  Evaluator(const TermTable &Terms, const Env &Bindings,
            const Definitions *Defs, std::string *ErrorOut)
      : Terms(Terms), Bindings(Bindings), Defs(Defs), ErrorOut(ErrorOut) {}

  std::optional<Value> eval(TermId Id) {
    auto It = Memo.find(Id);
    if (It != Memo.end())
      return It->second;
    std::optional<Value> Result = evalUncached(Id);
    if (Result)
      Memo.emplace(Id, *Result);
    return Result;
  }

private:
  const TermTable &Terms;
  const Env &Bindings;
  const Definitions *Defs;
  std::string *ErrorOut;
  std::unordered_map<TermId, Value> Memo;

  std::optional<Value> fail(const std::string &Msg) {
    if (ErrorOut && ErrorOut->empty())
      *ErrorOut = Msg;
    return std::nullopt;
  }

  std::optional<Value> evalUncached(TermId Id) {
    const TermNode &N = Terms.node(Id);
    const OpInfo &Info = Terms.ops().info(N.Op);
    if (Info.BuiltinOp == Builtin::Const)
      return Value::makeInt(N.ConstVal);
    if (Info.Kind == OpKind::Variable) {
      auto It = Bindings.find(N.Op);
      if (It == Bindings.end())
        return fail(strFormat("unbound variable '%s'", Info.Name.c_str()));
      return It->second;
    }
    std::vector<Value> Args;
    Args.reserve(N.Children.size());
    for (TermId C : N.Children) {
      std::optional<Value> V = eval(C);
      if (!V)
        return std::nullopt;
      Args.push_back(std::move(*V));
    }
    if (Info.Kind == OpKind::Builtin) {
      std::optional<Value> V = evalBuiltin(Info.BuiltinOp, Args);
      if (!V)
        return fail(strFormat("ill-typed application of '%s'",
                              Info.Name.c_str()));
      return V;
    }
    // Declared operator: expand a registered definition if there is one.
    if (Defs) {
      auto It = Defs->find(N.Op);
      if (It != Defs->end()) {
        const OpDefinition &Def = It->second;
        assert(Def.Params.size() == Args.size() && "definition arity");
        Env Inner = Bindings;
        for (size_t I = 0; I < Args.size(); ++I)
          Inner[Def.Params[I]] = Args[I];
        // Definitions may reference other defined ops; reuse the machinery
        // with a fresh memo (bindings differ).
        Evaluator Sub(Terms, Inner, Defs, ErrorOut);
        return Sub.eval(Def.Body);
      }
    }
    return fail(strFormat("no semantics for declared operator '%s'",
                          Info.Name.c_str()));
  }
};

} // namespace

std::optional<Value> denali::ir::evalTerm(const TermTable &Terms, TermId Term,
                                          const Env &Bindings,
                                          const Definitions *Defs,
                                          std::string *ErrorOut) {
  return Evaluator(Terms, Bindings, Defs, ErrorOut).eval(Term);
}
