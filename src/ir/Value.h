//===- ir/Value.h - Runtime values (ints, arrays-as-values) -----*- C++ -*-===//
///
/// \file
/// Runtime values for the reference evaluator and the Alpha functional
/// simulator. Following the paper (section 3), entire arrays are values:
/// the memory M is an array value, and `store` produces a new array value.
///
/// An array value is a *base generator* (a seeded hash of the index, so
/// reads at arbitrary addresses are defined, which matters for differential
/// testing) plus a persistent overlay of explicit writes.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_IR_VALUE_H
#define DENALI_IR_VALUE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace denali {
namespace ir {

/// The contents of one array value. Immutable once shared; store() copies.
struct ArrayData {
  /// Seed of the base generator; two arrays with different seeds are
  /// considered unequal even if no explicit writes differ.
  uint64_t Seed = 0;
  /// Explicit writes, keyed by index. Entries whose value equals the base
  /// generator's value are erased to keep equality extensional.
  std::map<uint64_t, uint64_t> Overlay;

  /// The base (pre-write) contents at \p Index.
  uint64_t baseAt(uint64_t Index) const;
};

/// A runtime value: a 64-bit integer or an array.
class Value {
public:
  enum class Kind { Int, Array };

  Value() : TheKind(Kind::Int), Int(0) {}
  static Value makeInt(uint64_t V);
  /// A fresh array whose base contents are generated from \p Seed.
  static Value makeArray(uint64_t Seed);

  Kind kind() const { return TheKind; }
  bool isInt() const { return TheKind == Kind::Int; }
  bool isArray() const { return TheKind == Kind::Array; }

  /// Integer payload; asserts on arrays.
  uint64_t asInt() const;

  /// Array read; asserts on ints.
  uint64_t select(uint64_t Index) const;

  /// Functional array write; asserts on ints. \returns the new array value.
  Value store(uint64_t Index, uint64_t Elem) const;

  /// Extensional equality (same seed, same effective contents) for arrays;
  /// numeric equality for ints; false across kinds.
  bool equals(const Value &O) const;

  std::string toString() const;

private:
  Kind TheKind;
  uint64_t Int = 0;
  std::shared_ptr<const ArrayData> Arr;
};

} // namespace ir
} // namespace denali

#endif // DENALI_IR_VALUE_H
