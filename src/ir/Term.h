//===- ir/Term.h - Hash-consed term DAG -------------------------*- C++ -*-===//
///
/// \file
/// Immutable, hash-consed terms. A TermId is an index into the owning
/// Context's TermTable; structurally equal terms always receive the same
/// TermId, so term DAGs share subterms maximally. The GMA composer builds
/// goal terms here; the E-graph is seeded from them.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_IR_TERM_H
#define DENALI_IR_TERM_H

#include "ir/Ops.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace denali {
namespace ir {

using TermId = uint32_t;

/// One interned term: an operator applied to child terms, with a payload
/// for constants.
struct TermNode {
  OpId Op = 0;
  std::vector<TermId> Children;
  uint64_t ConstVal = 0; ///< Meaningful only when Op is Builtin::Const.
};

/// The intern table for terms. Owned by Context.
class TermTable {
public:
  explicit TermTable(OpTable &Ops) : Ops(Ops) {}

  /// Interns op(children...). Asserts the arity matches.
  TermId make(OpId Op, const std::vector<TermId> &Children);

  /// Interns the constant \p Value.
  TermId makeConst(uint64_t Value);

  /// Interns (declaring if necessary) the variable \p Name.
  TermId makeVar(const std::string &Name);

  const TermNode &node(TermId Id) const;
  size_t size() const { return Nodes.size(); }

  bool isConst(TermId Id) const { return Ops.isConst(node(Id).Op); }
  bool isVariable(TermId Id) const { return Ops.isVariable(node(Id).Op); }

  /// Builtin convenience builders used throughout the translator.
  TermId makeBuiltin(Builtin B, const std::vector<TermId> &Children) {
    return make(Ops.builtin(B), Children);
  }

  /// Replaces every occurrence of variables per \p Subst (variable OpId ->
  /// replacement term). Terms not mentioned map to themselves. Results are
  /// interned; repeated subterms are rewritten once.
  TermId substitute(TermId Root,
                    const std::unordered_map<OpId, TermId> &Subst);

  /// Renders \p Id as an S-expression-style string.
  std::string toString(TermId Id) const;

  OpTable &ops() { return Ops; }
  const OpTable &ops() const { return Ops; }

private:
  OpTable &Ops;
  std::vector<TermNode> Nodes;

  struct Key {
    OpId Op;
    std::vector<TermId> Children;
    uint64_t ConstVal;
    bool operator==(const Key &O) const {
      return Op == O.Op && ConstVal == O.ConstVal && Children == O.Children;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      size_t H = std::hash<uint64_t>()((static_cast<uint64_t>(K.Op) << 32) ^
                                       K.ConstVal);
      for (TermId C : K.Children)
        H = H * 1000003u ^ C;
      return H;
    }
  };
  std::unordered_map<Key, TermId, KeyHash> Interned;

  TermId intern(Key K);
};

/// A Context bundles the operator and term tables that all phases share.
struct Context {
  OpTable Ops;
  TermTable Terms;

  Context() : Terms(Ops) {}
  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;
};

} // namespace ir
} // namespace denali

#endif // DENALI_IR_TERM_H
