//===- support/Json.cpp ---------------------------------------------------===//

#include "support/Json.h"

#include "support/StringExtras.h"

#include <cctype>
#include <cstdlib>

using namespace denali;
using namespace denali::support::json;

namespace {

class Parser {
public:
  Parser(const std::string &Text) : Text(Text) {}

  std::unique_ptr<Value> run(std::string *Err) {
    auto V = std::make_unique<Value>();
    if (!parseValue(*V) || (skipWs(), Pos != Text.size())) {
      if (Err)
        *Err = Error.empty()
                   ? strFormat("trailing garbage at offset %zu", Pos)
                   : Error;
      return nullptr;
    }
    return V;
  }

private:
  const std::string &Text;
  size_t Pos = 0;
  std::string Error;

  bool fail(const char *Msg) {
    if (Error.empty())
      Error = strFormat("%s at offset %zu", Msg, Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool literal(const char *Word) {
    size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) != 0)
      return fail("bad literal");
    Pos += Len;
    return true;
  }

  /// Reads the four hex digits of a \uXXXX escape (the "\u" is consumed).
  bool readHex4(unsigned &Code) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Code = 0;
    for (int Hex = 0; Hex < 4; ++Hex) {
      char H = Text[Pos++];
      Code <<= 4;
      if (H >= '0' && H <= '9')
        Code |= H - '0';
      else if (H >= 'a' && H <= 'f')
        Code |= H - 'a' + 10;
      else if (H >= 'A' && H <= 'F')
        Code |= H - 'A' + 10;
      else
        return fail("bad \\u escape");
    }
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected string");
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'n': Out += '\n'; break;
      case 'r': Out += '\r'; break;
      case 't': Out += '\t'; break;
      case 'u': {
        unsigned Code = 0;
        if (!readHex4(Code))
          return false;
        // Surrogate pairs combine into one supplementary code point; a
        // lone surrogate (either half) is malformed JSON.
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          if (Pos + 2 > Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail("unpaired high surrogate");
          Pos += 2;
          unsigned Low = 0;
          if (!readHex4(Low))
            return false;
          if (Low < 0xDC00 || Low > 0xDFFF)
            return fail("bad low surrogate");
          Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return fail("unpaired low surrogate");
        }
        // UTF-8 encode the code point.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else if (Code < 0x10000) {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xF0 | (Code >> 18));
          Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseValue(Value &V) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      V.K = Value::Kind::Object;
      skipWs();
      if (consume('}'))
        return true;
      while (true) {
        std::string Key;
        if (!parseString(Key))
          return false;
        if (!consume(':'))
          return fail("expected ':'");
        Value Member;
        if (!parseValue(Member))
          return false;
        V.Obj.emplace(std::move(Key), std::move(Member));
        if (consume(','))
          continue;
        if (consume('}'))
          return true;
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      V.K = Value::Kind::Array;
      skipWs();
      if (consume(']'))
        return true;
      while (true) {
        Value Elem;
        if (!parseValue(Elem))
          return false;
        V.Arr.push_back(std::move(Elem));
        if (consume(','))
          continue;
        if (consume(']'))
          return true;
        return fail("expected ',' or ']'");
      }
    }
    if (C == '"') {
      V.K = Value::Kind::String;
      return parseString(V.Str);
    }
    if (C == 't') {
      V.K = Value::Kind::Bool;
      V.B = true;
      return literal("true");
    }
    if (C == 'f') {
      V.K = Value::Kind::Bool;
      V.B = false;
      return literal("false");
    }
    if (C == 'n') {
      V.K = Value::Kind::Null;
      return literal("null");
    }
    if (C == '-' || (C >= '0' && C <= '9')) {
      const char *Begin = Text.c_str() + Pos;
      char *End = nullptr;
      V.K = Value::Kind::Number;
      V.Num = std::strtod(Begin, &End);
      if (End == Begin)
        return fail("bad number");
      Pos += End - Begin;
      return true;
    }
    return fail("unexpected character");
  }
};

} // namespace

std::unique_ptr<Value> denali::support::json::parse(const std::string &Text,
                                                    std::string *Err) {
  return Parser(Text).run(Err);
}
