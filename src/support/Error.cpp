//===- support/Error.cpp --------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace denali;

void denali::reportFatalError(const std::string &Msg) {
  std::fprintf(stderr, "denali fatal error: %s\n", Msg.c_str());
  std::abort();
}

void denali::unreachableInternal(const char *Msg, const char *File,
                                 unsigned Line) {
  std::fprintf(stderr, "denali unreachable at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
