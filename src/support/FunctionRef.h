//===- support/FunctionRef.h - Non-owning callable reference ----*- C++ -*-===//
///
/// \file
/// A lightweight, non-owning reference to a callable (two pointers, no heap
/// allocation), in the spirit of llvm::function_ref. Used on hot paths —
/// notably the e-matcher's continuation-passing search — where a
/// std::function per call would allocate.
///
/// A FunctionRef must not outlive the callable it was constructed from; it
/// is intended for parameters invoked within the callee's dynamic extent.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SUPPORT_FUNCTIONREF_H
#define DENALI_SUPPORT_FUNCTIONREF_H

#include <type_traits>
#include <utility>

namespace denali {

template <typename Fn> class FunctionRef;

template <typename Ret, typename... Params> class FunctionRef<Ret(Params...)> {
  Ret (*Callback)(void *Callable, Params... Ps) = nullptr;
  void *Callable = nullptr;

  template <typename Callee>
  static Ret callbackFn(void *C, Params... Ps) {
    return (*reinterpret_cast<Callee *>(C))(std::forward<Params>(Ps)...);
  }

public:
  FunctionRef() = default;

  template <typename Callee,
            typename = std::enable_if_t<!std::is_same_v<
                std::remove_cv_t<std::remove_reference_t<Callee>>,
                FunctionRef>>>
  FunctionRef(Callee &&Fn) // NOLINT: implicit by design, like llvm's.
      : Callback(callbackFn<std::remove_reference_t<Callee>>),
        Callable(const_cast<void *>(
            static_cast<const void *>(std::addressof(Fn)))) {}

  Ret operator()(Params... Ps) const {
    return Callback(Callable, std::forward<Params>(Ps)...);
  }

  explicit operator bool() const { return Callback != nullptr; }
};

} // namespace denali

#endif // DENALI_SUPPORT_FUNCTIONREF_H
