//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

using namespace denali;
using namespace denali::support;

namespace {
thread_local int CurrentWorker = -1;
} // namespace

int ThreadPool::currentWorkerId() { return CurrentWorker; }

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = 1;
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
    Queue.clear(); // Unstarted tasks become broken promises.
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop(unsigned Index) {
  CurrentWorker = static_cast<int>(Index);
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Stopping && Queue.empty())
        return;
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    // packaged_task routes any exception into the future.
    Task();
  }
}
