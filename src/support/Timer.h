//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
///
/// \file
/// A trivial wall-clock timer used by the driver and benchmarks to report
/// per-phase times (matching, constraint generation, SAT solving).
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SUPPORT_TIMER_H
#define DENALI_SUPPORT_TIMER_H

#include <chrono>

namespace denali {

/// Measures elapsed wall-clock time in seconds since construction or the
/// last reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the timer.
  void reset() { Start = Clock::now(); }

  /// \returns seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace denali

#endif // DENALI_SUPPORT_TIMER_H
