//===- support/StringExtras.cpp -------------------------------------------===//

#include "support/StringExtras.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace denali;

std::string denali::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Len > 0) {
    Out.resize(static_cast<size_t>(Len) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, Args);
    Out.resize(static_cast<size_t>(Len));
  }
  va_end(Args);
  return Out;
}

std::vector<std::string> denali::splitString(const std::string &S,
                                             const std::string &Seps) {
  std::vector<std::string> Pieces;
  std::string Cur;
  for (char C : S) {
    if (Seps.find(C) != std::string::npos) {
      if (!Cur.empty())
        Pieces.push_back(Cur);
      Cur.clear();
      continue;
    }
    Cur.push_back(C);
  }
  if (!Cur.empty())
    Pieces.push_back(Cur);
  return Pieces;
}

bool denali::parseIntegerLiteral(std::string_view S, int64_t &Out) {
  if (S.empty())
    return false;
  size_t I = 0;
  bool Neg = false;
  if (S[0] == '-' || S[0] == '+') {
    Neg = S[0] == '-';
    I = 1;
  }
  if (I >= S.size())
    return false;
  int Base = 10;
  if (S.size() - I > 2 && S[I] == '0' && (S[I + 1] == 'x' || S[I + 1] == 'X')) {
    Base = 16;
    I += 2;
  }
  uint64_t Val = 0;
  for (; I < S.size(); ++I) {
    char C = S[I];
    int Digit;
    if (C >= '0' && C <= '9')
      Digit = C - '0';
    else if (Base == 16 && C >= 'a' && C <= 'f')
      Digit = C - 'a' + 10;
    else if (Base == 16 && C >= 'A' && C <= 'F')
      Digit = C - 'A' + 10;
    else
      return false;
    Val = Val * static_cast<uint64_t>(Base) + static_cast<uint64_t>(Digit);
  }
  Out = Neg ? -static_cast<int64_t>(Val) : static_cast<int64_t>(Val);
  return true;
}

std::string denali::formatConstant(uint64_t V) {
  if (V < 1024)
    return strFormat("%llu", static_cast<unsigned long long>(V));
  if (static_cast<int64_t>(V) < 0 && static_cast<int64_t>(V) > -1024)
    return strFormat("%lld", static_cast<long long>(V));
  return strFormat("0x%llx", static_cast<unsigned long long>(V));
}
