//===- support/ThreadPool.h - Worker pool + cancellation --------*- C++ -*-===//
///
/// \file
/// A reusable fixed-size worker pool and a cooperative cancellation token,
/// used by the portfolio budget search (codegen/Search.cpp) to run SAT
/// probes for several cycle budgets concurrently and to abandon probes a
/// completed probe has made irrelevant.
///
/// Tasks are arbitrary callables; submit() returns a std::future carrying
/// the task's result or, if it threw, its exception. Cancellation is
/// cooperative: cancelling a token never interrupts a thread — long-running
/// work (the SAT solver's CDCL loop) polls the token's flag at safe
/// boundaries and winds down on its own.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SUPPORT_THREADPOOL_H
#define DENALI_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace denali {
namespace support {

/// A shareable cancellation flag. Copies refer to the same flag; any copy
/// may request cancellation and any may poll it. The raw atomic can be
/// handed to code (sat::Solver::setInterrupt) that should poll without
/// owning the token.
class CancellationToken {
public:
  CancellationToken() : Flag(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Idempotent, thread-safe.
  void requestCancel() { Flag->store(true, std::memory_order_relaxed); }

  /// True once cancellation was requested.
  bool isCancelled() const { return Flag->load(std::memory_order_relaxed); }

  /// The underlying flag, for pollers that only need to read it. Valid as
  /// long as any token copy is alive.
  const std::atomic<bool> *flag() const { return Flag.get(); }

private:
  std::shared_ptr<std::atomic<bool>> Flag;
};

/// A fixed-size pool of worker threads draining a FIFO task queue.
/// Destruction drains nothing: queued-but-unstarted tasks are discarded
/// (their futures are abandoned as broken promises), running tasks are
/// joined. Keep the pool alive until every future you care about is ready.
class ThreadPool {
public:
  /// Spawns \p Threads workers (at least one).
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Fn; the returned future delivers its result or exception.
  template <typename Fn>
  auto submit(Fn &&Work) -> std::future<std::invoke_result_t<Fn>> {
    using Ret = std::invoke_result_t<Fn>;
    auto Task =
        std::make_shared<std::packaged_task<Ret()>>(std::forward<Fn>(Work));
    std::future<Ret> Result = Task->get_future();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Queue.emplace_back([Task] { (*Task)(); });
    }
    WorkAvailable.notify_one();
    return Result;
  }

  /// The index of the pool worker running the calling thread, or -1 when
  /// called from a non-pool thread. Probes report it so portfolio runs can
  /// attribute the winning schedule to a thread.
  static int currentWorkerId();

private:
  void workerLoop(unsigned Index);

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  bool Stopping = false;
};

} // namespace support
} // namespace denali

#endif // DENALI_SUPPORT_THREADPOOL_H
