//===- support/Error.h - Fatal errors and unreachable markers -*- C++ -*-===//
//
// Part of the Denali superoptimizer reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal programmatic-error utilities in the spirit of LLVM's
/// report_fatal_error / llvm_unreachable. The library does not use C++
/// exceptions; invariant violations abort with a message.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SUPPORT_ERROR_H
#define DENALI_SUPPORT_ERROR_H

#include <string>

namespace denali {

/// Prints \p Msg to stderr and aborts. Used for unrecoverable conditions
/// (malformed built-in axiom files, broken internal invariants).
[[noreturn]] void reportFatalError(const std::string &Msg);

/// Marks a point in the code that must never be reached.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace denali

#define DENALI_UNREACHABLE(MSG)                                               \
  ::denali::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // DENALI_SUPPORT_ERROR_H
