//===- support/StringExtras.h - String helpers ------------------*- C++ -*-===//
///
/// \file
/// printf-style formatting into std::string plus a few small string
/// predicates used by the parsers and printers.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SUPPORT_STRINGEXTRAS_H
#define DENALI_SUPPORT_STRINGEXTRAS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace denali {

/// printf-style formatting that returns a std::string.
std::string strFormat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits \p S on any character from \p Seps, dropping empty pieces.
std::vector<std::string> splitString(const std::string &S,
                                     const std::string &Seps);

/// \returns true if \p S parses as a (possibly negative, possibly 0x-prefixed)
/// integer literal; the value is stored in \p Out.
/// The parameter is a view so zero-copy tokenizers (sexpr::parse) can
/// test candidate tokens without materializing a std::string.
bool parseIntegerLiteral(std::string_view S, int64_t &Out);

/// Renders \p V as a decimal if small, hexadecimal otherwise (readability of
/// masks like 0xffff in printed terms).
std::string formatConstant(uint64_t V);

} // namespace denali

#endif // DENALI_SUPPORT_STRINGEXTRAS_H
