//===- support/Json.h - Minimal JSON DOM parser -----------------*- C++ -*-===//
///
/// \file
/// A small recursive-descent JSON parser producing an immutable DOM. Used
/// by the observability tests and the `obs_report` tool to validate and
/// query the Chrome trace / metrics artifacts the obs layer writes; it is
/// a consumer-side checker, not a serializer (the obs exporters format
/// their JSON directly).
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SUPPORT_JSON_H
#define DENALI_SUPPORT_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace denali {
namespace support {
namespace json {

/// One parsed JSON value.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolValue() const { return B; }
  double numberValue() const { return Num; }
  const std::string &stringValue() const { return Str; }
  const std::vector<Value> &array() const { return Arr; }
  const std::map<std::string, Value> &object() const { return Obj; }

  /// The object field named \p Name, or null if absent / not an object.
  const Value *field(const std::string &Name) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Obj.find(Name);
    return It == Obj.end() ? nullptr : &It->second;
  }

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::map<std::string, Value> Obj;
};

/// Parses \p Text as a single JSON document. \returns the value, or null
/// with \p Err set (when non-null) on malformed input. Trailing
/// whitespace is allowed; trailing garbage is an error.
std::unique_ptr<Value> parse(const std::string &Text, std::string *Err);

} // namespace json
} // namespace support
} // namespace denali

#endif // DENALI_SUPPORT_JSON_H
