//===- explain/Explain.h - Provenance & explanation layer -------*- C++ -*-===//
///
/// \file
/// The semantic-observability layer: turns the provenance the pipeline
/// records (the E-graph's proof forest, the encoder's clause tags, the
/// extractor's term links) into user-facing artifacts —
///
///  * **program explanations** — per emitted instruction, its e-class and
///    the axiom-level derivation chain from the specification-side term
///    down to the matched architectural instruction, plus the universe
///    latency/unit facts the scheduler used (JSON + annotated listing);
///  * **why-unsat reports** — the clause-family attribution core of the
///    K-1 refutation, folded into a human-readable bottleneck summary
///    ("K=3 refuted: issue-slot capacity on U1 at cycles 1-2, ...");
///  * **e-graph inspectors** — DOT and JSON dumps of the quiescent graph,
///    filterable by e-class and depth.
///
/// Everything here is read-only over the existing structures; nothing in
/// the hot pipeline depends on this library.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_EXPLAIN_EXPLAIN_H
#define DENALI_EXPLAIN_EXPLAIN_H

#include "codegen/Search.h"
#include "codegen/Universe.h"
#include "match/Axiom.h"

#include <optional>
#include <string>
#include <vector>

namespace denali {
namespace explain {

/// One rendered step of a derivation chain: justification J asserted
/// From == To (or To == From when !Forward).
struct DerivationStep {
  egraph::ClassId From = 0;
  egraph::ClassId To = 0;
  egraph::Justification::Kind Kind = egraph::Justification::Kind::External;
  bool Forward = true;
  uint32_t AxiomIdx = ~0u;    ///< Kind::Axiom.
  std::string AxiomName;      ///< Kind::Axiom.
  uint32_t Round = 0;         ///< Matcher round (Kind::Axiom).
  /// Substitution of the axiom instance: variable name -> bound class.
  std::vector<std::pair<std::string, egraph::ClassId>> Subst;
};

/// Human-readable name of a justification kind ("axiom", "congruence", ...).
const char *justificationKindName(egraph::Justification::Kind K);

/// Explanation of one emitted instruction.
struct InstructionExplanation {
  size_t InstrIndex = 0;  ///< Position in Program::Instrs.
  std::string Mnemonic;
  unsigned Cycle = 0;
  std::string Unit;
  unsigned Latency = 1;
  std::vector<std::string> AllowedUnits; ///< Universe unit facts.
  int32_t Term = -1;                     ///< Universe machine-term index.
  egraph::ClassId Class = 0;             ///< Canonical class computed.
  std::string MachineNode; ///< Rendered machine-side e-node.
  std::string SpecAnchor;  ///< Rendered specification-side anchor node.
  bool IsLdiq = false;     ///< Constant materialization (no e-node).
  /// Axiom-level derivation from the anchor down to the machine node.
  /// Empty with DirectlyInSpec set when the machine node *is* the earliest
  /// member of its class (the instruction appears verbatim in the spec).
  std::vector<DerivationStep> Chain;
  bool DirectlyInSpec = false;
};

/// Explanation of a whole winning schedule.
struct ProgramExplanation {
  std::string Name;
  unsigned Cycles = 0;
  std::vector<InstructionExplanation> Instrs;
};

/// Builds the per-instruction derivation chains for \p P. Requires the
/// graph to have recorded provenance (EGraph::enableProvenance before
/// saturation) and the program to carry Instruction::SourceTerm links (set
/// by Encoder::extract).
ProgramExplanation explainProgram(const egraph::EGraph &G,
                                  const codegen::Universe &U,
                                  const std::vector<match::Axiom> &Axioms,
                                  const machine::Program &P);

/// Renders \p E as a JSON document.
std::string explanationToJson(const ProgramExplanation &E);

/// Renders \p E as an annotated assembly listing (the Figure 4 style plus
/// one provenance comment block per instruction).
std::string explanationToListing(const ProgramExplanation &E);

/// Folds SearchResult::WhyUnsatTags into the bottleneck report, e.g.
/// "K=3 refuted: issue-slot capacity on U1 at cycles 1-2; operand
/// latency of t17 (mull); goal deadline 'r'". Empty string when the result
/// carries no why-unsat core.
std::string whyUnsatReport(const codegen::SearchResult &R,
                           const codegen::Universe &U,
                           const std::vector<codegen::NamedGoal> &Goals);

/// Filters for the e-graph dumps.
struct EGraphDumpOptions {
  /// Restrict to the classes reachable from this class's nodes (child
  /// edges), if set.
  std::optional<egraph::ClassId> FocusClass;
  /// With FocusClass: how many child-edge hops to include (~0u = all).
  unsigned MaxDepth = ~0u;
};

/// Renders the quiescent e-graph as Graphviz DOT (one cluster per e-class,
/// child edges between nodes and classes).
std::string egraphToDot(const egraph::EGraph &G,
                        const EGraphDumpOptions &Opts = {});

/// Renders the quiescent e-graph as JSON (classes -> member nodes with
/// operator, children, constants).
std::string egraphToJson(const egraph::EGraph &G,
                         const EGraphDumpOptions &Opts = {});

} // namespace explain
} // namespace denali

#endif // DENALI_EXPLAIN_EXPLAIN_H
