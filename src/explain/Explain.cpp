//===- explain/Explain.cpp ------------------------------------------------===//

#include "explain/Explain.h"

#include "obs/Obs.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

using namespace denali;
using namespace denali::explain;
using namespace denali::egraph;

const char *
denali::explain::justificationKindName(Justification::Kind K) {
  switch (K) {
  case Justification::Kind::External:
    return "external";
  case Justification::Kind::Axiom:
    return "axiom";
  case Justification::Kind::Congruence:
    return "congruence";
  case Justification::Kind::ConstantFold:
    return "constant-fold";
  case Justification::Kind::ClauseUnit:
    return "clause-unit";
  }
  return "unknown";
}

namespace {

/// Renders one proof step, resolving axiom names and substitutions.
DerivationStep renderStep(const EGraph &G,
                          const std::vector<match::Axiom> &Axioms,
                          const ProofStep &PS) {
  DerivationStep D;
  D.From = PS.From;
  D.To = PS.To;
  D.Kind = PS.J.TheKind;
  D.Forward = PS.Forward;
  if (PS.J.TheKind == Justification::Kind::Axiom) {
    D.AxiomIdx = PS.J.RuleId;
    D.Round = PS.J.Round;
    const match::Axiom *A =
        PS.J.RuleId < Axioms.size() ? &Axioms[PS.J.RuleId] : nullptr;
    D.AxiomName = A ? A->Name : strFormat("axiom#%u", PS.J.RuleId);
    const std::vector<ClassId> &Arena = G.substArena();
    for (uint32_t I = 0; I < PS.J.SubstLen; ++I) {
      if (PS.J.SubstBegin + I >= Arena.size())
        break;
      std::string Var = A && I < A->VarNames.size()
                            ? A->VarNames[I]
                            : strFormat("v%u", I);
      D.Subst.emplace_back(std::move(Var),
                           G.find(Arena[PS.J.SubstBegin + I]));
    }
  }
  return D;
}

} // namespace

ProgramExplanation
denali::explain::explainProgram(const EGraph &G, const codegen::Universe &U,
                                const std::vector<match::Axiom> &Axioms,
                                const machine::Program &P) {
  ProgramExplanation E;
  E.Name = P.Name;
  E.Cycles = P.Cycles;
  const std::vector<codegen::MachineTerm> &Terms = U.terms();
  for (size_t Idx = 0; Idx < P.Instrs.size(); ++Idx) {
    const machine::Instruction &I = P.Instrs[Idx];
    InstructionExplanation IE;
    IE.InstrIndex = Idx;
    IE.Mnemonic = I.Mnemonic;
    IE.Cycle = I.Cycle;
    IE.Unit = P.Model ? P.Model->unitName(I.IssueUnit)
                      : machine::defaultUnitName(I.IssueUnit);
    IE.Latency = I.Latency;
    IE.Term = I.SourceTerm;
    if (I.SourceTerm >= 0 &&
        static_cast<size_t>(I.SourceTerm) < Terms.size()) {
      const codegen::MachineTerm &MT = Terms[I.SourceTerm];
      for (machine::UnitId Un : MT.Units)
        IE.AllowedUnits.push_back(
            U.model() ? U.model()->unitName(Un)
                      : machine::defaultUnitName(Un));
      IE.Class = G.find(MT.Class);
      IE.IsLdiq = MT.IsLdiq;
      if (MT.IsLdiq) {
        // Constant materialization: no e-node, nothing to derive.
        IE.MachineNode = strFormat("(ldiq %llu)",
                                   static_cast<unsigned long long>(
                                       MT.ConstVal));
        IE.DirectlyInSpec = true;
      } else {
        IE.MachineNode = G.nodeToString(MT.Node);
        // Specification-side anchor: the earliest-created live member of
        // the class. Node ids grow monotonically, so the lowest id is the
        // node closest to (usually inside) the original GMA/goal terms;
        // the chain from it to the machine node replays the axioms that
        // made the instruction applicable.
        ENodeId Anchor = ~0u;
        G.forEachClassNode(IE.Class, [&](ENodeId N) {
          if (N < Anchor)
            Anchor = N;
        });
        if (Anchor != ~0u) {
          IE.SpecAnchor = G.nodeToString(Anchor);
          std::vector<ProofStep> Steps =
              G.explain(G.node(Anchor).Class, G.node(MT.Node).Class);
          for (const ProofStep &PS : Steps)
            IE.Chain.push_back(renderStep(G, Axioms, PS));
          IE.DirectlyInSpec = IE.Chain.empty();
        }
      }
    }
    E.Instrs.push_back(std::move(IE));
  }
  return E;
}

std::string denali::explain::explanationToJson(const ProgramExplanation &E) {
  std::string Out;
  Out += strFormat("{\"program\": \"%s\", \"cycles\": %u,\n"
                   " \"instructions\": [",
                   obs::jsonEscape(E.Name).c_str(), E.Cycles);
  for (size_t I = 0; I < E.Instrs.size(); ++I) {
    const InstructionExplanation &IE = E.Instrs[I];
    Out += I ? ",\n  {" : "\n  {";
    Out += strFormat(
        "\"index\": %zu, \"mnemonic\": \"%s\", \"cycle\": %u, "
        "\"unit\": \"%s\", \"latency\": %u, \"term\": %d, \"class\": %u, ",
        IE.InstrIndex, obs::jsonEscape(IE.Mnemonic).c_str(), IE.Cycle,
        obs::jsonEscape(IE.Unit).c_str(), IE.Latency, IE.Term, IE.Class);
    Out += "\"allowed_units\": [";
    for (size_t J = 0; J < IE.AllowedUnits.size(); ++J)
      Out += strFormat("%s\"%s\"", J ? ", " : "",
                       obs::jsonEscape(IE.AllowedUnits[J]).c_str());
    Out += strFormat(
        "], \"machine_node\": \"%s\", \"spec_anchor\": \"%s\", "
        "\"ldiq\": %s, \"directly_in_spec\": %s, \"chain\": [",
        obs::jsonEscape(IE.MachineNode).c_str(),
        obs::jsonEscape(IE.SpecAnchor).c_str(), IE.IsLdiq ? "true" : "false",
        IE.DirectlyInSpec ? "true" : "false");
    for (size_t J = 0; J < IE.Chain.size(); ++J) {
      const DerivationStep &D = IE.Chain[J];
      Out += strFormat("%s\n    {\"from\": %u, \"to\": %u, \"kind\": "
                       "\"%s\", \"forward\": %s",
                       J ? "," : "", D.From, D.To,
                       justificationKindName(D.Kind),
                       D.Forward ? "true" : "false");
      if (D.Kind == Justification::Kind::Axiom) {
        Out += strFormat(", \"axiom\": \"%s\", \"axiom_index\": %u, "
                         "\"round\": %u, \"subst\": {",
                         obs::jsonEscape(D.AxiomName).c_str(), D.AxiomIdx,
                         D.Round);
        for (size_t S = 0; S < D.Subst.size(); ++S)
          Out += strFormat("%s\"%s\": %u, ", S ? "" : "",
                           obs::jsonEscape(D.Subst[S].first).c_str(),
                           D.Subst[S].second);
        if (!D.Subst.empty())
          Out.erase(Out.size() - 2); // Trailing ", ".
        Out += "}";
      }
      Out += "}";
    }
    Out += "]}";
  }
  Out += "\n]}\n";
  return Out;
}

std::string
denali::explain::explanationToListing(const ProgramExplanation &E) {
  std::string Out = strFormat("; %s: %u cycle(s), %zu instruction(s)\n",
                              E.Name.c_str(), E.Cycles, E.Instrs.size());
  for (const InstructionExplanation &IE : E.Instrs) {
    Out += strFormat("%-10s # cycle %u, %s, latency %u", IE.Mnemonic.c_str(),
                     IE.Cycle, IE.Unit.c_str(), IE.Latency);
    if (!IE.AllowedUnits.empty()) {
      Out += " (units:";
      for (const std::string &Un : IE.AllowedUnits)
        Out += " " + Un;
      Out += ")";
    }
    Out += "\n";
    if (IE.IsLdiq) {
      Out += strFormat("    ; t%d %s: constant materialization\n", IE.Term,
                       IE.MachineNode.c_str());
      continue;
    }
    Out += strFormat("    ; t%d in class c%u: %s\n", IE.Term, IE.Class,
                     IE.MachineNode.c_str());
    if (IE.DirectlyInSpec) {
      Out += strFormat("    ; directly present in the specification\n");
      continue;
    }
    Out += strFormat("    ; derived from %s:\n", IE.SpecAnchor.c_str());
    for (const DerivationStep &D : IE.Chain) {
      Out += strFormat("    ;   c%u %s c%u  [%s", D.From,
                       D.Forward ? "->" : "<-", D.To,
                       justificationKindName(D.Kind));
      if (D.Kind == Justification::Kind::Axiom) {
        Out += strFormat(" %s @round %u", D.AxiomName.c_str(), D.Round);
        if (!D.Subst.empty()) {
          Out += " with";
          for (const auto &[Var, C] : D.Subst)
            Out += strFormat(" %s:=c%u", Var.c_str(), C);
        }
      }
      Out += "]\n";
    }
  }
  return Out;
}

std::string
denali::explain::whyUnsatReport(const codegen::SearchResult &R,
                                const codegen::Universe &U,
                                const std::vector<codegen::NamedGoal> &Goals) {
  if (R.WhyUnsatTags.empty() || R.WhyUnsatCycles == 0)
    return std::string();
  using codegen::ClauseFamily;
  struct FamilyAgg {
    std::set<unsigned> Cycles;
    std::set<unsigned> Units;
    std::set<uint32_t> Details;
    size_t Count = 0;
  };
  std::map<ClauseFamily, FamilyAgg> ByFamily;
  for (uint32_t T : R.WhyUnsatTags) {
    FamilyAgg &A = ByFamily[codegen::tagFamily(T)];
    ++A.Count;
    if (codegen::tagHasCycle(T))
      A.Cycles.insert(codegen::tagCycle(T));
    if (codegen::tagHasUnit(T))
      A.Units.insert(codegen::tagUnit(T));
    A.Details.insert(codegen::tagDetail(T));
  }

  auto cycleSpan = [](const std::set<unsigned> &Cs) {
    if (Cs.empty())
      return std::string();
    unsigned Lo = *Cs.begin(), Hi = *Cs.rbegin();
    return Lo == Hi ? strFormat(" at cycle %u", Lo)
                    : strFormat(" at cycles %u-%u", Lo, Hi);
  };
  auto unitList = [&U](const std::set<unsigned> &Us) {
    std::string S;
    for (unsigned UIdx : Us) {
      if (!S.empty())
        S += ",";
      S += U.model()
               ? U.model()->unitName(static_cast<machine::UnitId>(UIdx))
               : machine::defaultUnitName(UIdx);
    }
    return S;
  };
  auto termList = [&](const std::set<uint32_t> &Ts, size_t Cap) {
    std::string S;
    size_t N = 0;
    for (uint32_t T : Ts) {
      if (N++ == Cap) {
        S += strFormat(", +%zu more", Ts.size() - Cap);
        break;
      }
      if (!S.empty())
        S += ", ";
      const char *Mn = T < U.terms().size() && U.terms()[T].Desc
                           ? U.terms()[T].Desc->Mnemonic.c_str()
                           : "?";
      S += strFormat("t%u (%s)", T, Mn);
    }
    return S;
  };

  std::string Out =
      strFormat("K=%u refuted:", R.WhyUnsatCycles);
  bool First = true;
  auto item = [&](const std::string &S) {
    Out += First ? " " : "; ";
    Out += S;
    First = false;
  };
  for (const auto &[F, A] : ByFamily) {
    switch (F) {
    case ClauseFamily::Definition:
      item(strFormat("completion linkage of %zu class(es)%s",
                     A.Details.size(), cycleSpan(A.Cycles).c_str()));
      break;
    case ClauseFamily::Operand:
      item(strFormat("operand availability of %s%s",
                     termList(A.Details, 4).c_str(),
                     cycleSpan(A.Cycles).c_str()));
      break;
    case ClauseFamily::Exclusivity:
      item(strFormat("issue-slot capacity on %s%s",
                     unitList(A.Units).c_str(),
                     cycleSpan(A.Cycles).c_str()));
      break;
    case ClauseFamily::Deadline: {
      std::string Names;
      for (uint32_t GIdx : A.Details) {
        if (!Names.empty())
          Names += ", ";
        Names += GIdx < Goals.size()
                     ? strFormat("'%s'", Goals[GIdx].Target.c_str())
                     : strFormat("#%u", GIdx);
      }
      item(strFormat("goal deadline %s%s", Names.c_str(),
                     cycleSpan(A.Cycles).c_str()));
      break;
    }
    case ClauseFamily::Guard:
      item(strFormat("guard ordering of %s%s",
                     termList(A.Details, 4).c_str(),
                     cycleSpan(A.Cycles).c_str()));
      break;
    case ClauseFamily::Memory:
      item(strFormat("memory discipline of %s",
                     termList(A.Details, 4).c_str()));
      break;
    case ClauseFamily::Monotone:
      item(strFormat("budget-ladder gating%s", cycleSpan(A.Cycles).c_str()));
      break;
    case ClauseFamily::None:
      break;
    }
  }
  return Out;
}

namespace {

/// Classes included by the dump filter: all canonical classes, or the
/// child-edge cone of FocusClass up to MaxDepth.
std::vector<ClassId> dumpClasses(const EGraph &G,
                                 const EGraphDumpOptions &Opts) {
  if (!Opts.FocusClass)
    return G.canonicalClasses();
  std::vector<ClassId> Order;
  std::unordered_set<ClassId> Seen;
  std::vector<std::pair<ClassId, unsigned>> Stack{
      {G.find(*Opts.FocusClass), 0}};
  while (!Stack.empty()) {
    auto [C, Depth] = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(C).second)
      continue;
    Order.push_back(C);
    if (Depth >= Opts.MaxDepth)
      continue;
    G.forEachClassNode(C, [&](ENodeId N) {
      for (ClassId Child : G.node(N).Children)
        Stack.push_back({G.find(Child), Depth + 1});
    });
  }
  std::sort(Order.begin(), Order.end());
  return Order;
}

} // namespace

std::string denali::explain::egraphToDot(const EGraph &G,
                                         const EGraphDumpOptions &Opts) {
  const ir::Context &Ctx = G.context();
  std::vector<ClassId> Classes = dumpClasses(G, Opts);
  std::unordered_set<ClassId> Included(Classes.begin(), Classes.end());
  // A representative node per class, for inter-cluster edges.
  std::unordered_map<ClassId, ENodeId> Repr;
  for (ClassId C : Classes)
    G.forEachClassNode(C, [&](ENodeId N) {
      auto It = Repr.find(C);
      if (It == Repr.end() || N < It->second)
        Repr[C] = N;
    });

  std::string Out = "digraph egraph {\n  compound=true;\n"
                    "  node [shape=box, fontname=\"monospace\"];\n";
  for (ClassId C : Classes) {
    std::optional<uint64_t> K = G.classConstant(C);
    Out += strFormat("  subgraph cluster_c%u {\n    label=\"c%u%s\";\n", C, C,
                     K ? strFormat(" = %llu",
                                   static_cast<unsigned long long>(*K))
                             .c_str()
                       : "");
    G.forEachClassNode(C, [&](ENodeId N) {
      const ENode &Node = G.node(N);
      std::string Label = Ctx.Ops.isConst(Node.Op)
                              ? strFormat("%llu",
                                          static_cast<unsigned long long>(
                                              Node.ConstVal))
                              : Ctx.Ops.info(Node.Op).Name;
      Out += strFormat("    n%u [label=\"%s\"];\n", N,
                       obs::jsonEscape(Label).c_str());
    });
    Out += "  }\n";
  }
  for (ClassId C : Classes)
    G.forEachClassNode(C, [&](ENodeId N) {
      const ENode &Node = G.node(N);
      for (size_t I = 0; I < Node.Children.size(); ++I) {
        ClassId Child = G.find(Node.Children[I]);
        auto It = Repr.find(Child);
        if (!Included.count(Child) || It == Repr.end())
          continue;
        Out += strFormat(
            "  n%u -> n%u [lhead=cluster_c%u, label=\"%zu\"];\n", N,
            It->second, Child, I);
      }
    });
  Out += "}\n";
  return Out;
}

std::string denali::explain::egraphToJson(const EGraph &G,
                                          const EGraphDumpOptions &Opts) {
  const ir::Context &Ctx = G.context();
  std::vector<ClassId> Classes = dumpClasses(G, Opts);
  std::string Out = strFormat(
      "{\"classes\": %zu, \"nodes\": %zu,\n \"dump\": [", Classes.size(),
      G.numNodes());
  bool FirstClass = true;
  for (ClassId C : Classes) {
    Out += FirstClass ? "\n  {" : ",\n  {";
    FirstClass = false;
    Out += strFormat("\"class\": %u", C);
    if (std::optional<uint64_t> K = G.classConstant(C))
      Out += strFormat(", \"constant\": %llu",
                       static_cast<unsigned long long>(*K));
    Out += ", \"nodes\": [";
    bool FirstNode = true;
    G.forEachClassNode(C, [&](ENodeId N) {
      const ENode &Node = G.node(N);
      Out += FirstNode ? "" : ", ";
      FirstNode = false;
      Out += strFormat("{\"id\": %u, \"op\": \"%s\"", N,
                       obs::jsonEscape(Ctx.Ops.info(Node.Op).Name).c_str());
      if (Ctx.Ops.isConst(Node.Op))
        Out += strFormat(", \"value\": %llu",
                         static_cast<unsigned long long>(Node.ConstVal));
      if (!Node.Children.empty()) {
        Out += ", \"children\": [";
        for (size_t I = 0; I < Node.Children.size(); ++I)
          Out += strFormat("%s%u", I ? ", " : "", G.find(Node.Children[I]));
        Out += "]";
      }
      Out += "}";
    });
    Out += "]}";
  }
  Out += "\n]}\n";
  return Out;
}
