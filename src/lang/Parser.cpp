//===- lang/Parser.cpp ----------------------------------------------------===//

#include "lang/Parser.h"

#include "sexpr/Parser.h"
#include "support/StringExtras.h"

using namespace denali;
using namespace denali::lang;
using denali::sexpr::SExpr;

namespace {

class ModuleParser {
public:
  explicit ModuleParser(std::string *ErrorOut) : ErrorOut(ErrorOut) {}

  std::optional<Module> run(const std::string &Text) {
    sexpr::ParseResult Parsed = sexpr::parse(Text);
    if (!Parsed.ok()) {
      if (ErrorOut)
        *ErrorOut = Parsed.Error->toString();
      return std::nullopt;
    }
    Module M;
    for (const SExpr &Form : Parsed.Forms) {
      if (Form.isForm("\\opdecl")) {
        if (!parseOpDecl(Form, M))
          return std::nullopt;
      } else if (Form.isForm("\\axiom")) {
        M.Axioms.push_back(Form);
      } else if (Form.isForm("\\procdecl")) {
        if (!parseProc(Form, M))
          return std::nullopt;
      } else {
        fail(Form, "expected \\opdecl, \\axiom or \\procdecl at top level");
        return std::nullopt;
      }
    }
    return M;
  }

private:
  std::string *ErrorOut;

  bool fail(const SExpr &Where, const std::string &Msg) {
    if (ErrorOut)
      *ErrorOut =
          strFormat("%u:%u: %s", Where.line(), Where.column(), Msg.c_str());
    return false;
  }

  std::optional<Type> parseType(const SExpr &Form) {
    if (Form.isSymbol()) {
      const std::string &Name = Form.symbol();
      if (Name == "long")
        return Type{TypeKind::Long};
      if (Name == "int")
        return Type{TypeKind::Int};
      if (Name == "short")
        return Type{TypeKind::Short};
      if (Name == "byte")
        return Type{TypeKind::Byte};
    }
    if (Form.isForm("\\ref") && Form.size() == 2)
      return Type{TypeKind::Ptr};
    fail(Form, "unknown type");
    return std::nullopt;
  }

  bool parseOpDecl(const SExpr &Form, Module &M) {
    // (\opdecl name (argtypes...) rettype)
    if (Form.size() != 4 || !Form[1].isSymbol() || !Form[2].isList())
      return fail(Form, "malformed \\opdecl");
    OpDecl D;
    D.Name = Form[1].symbol();
    D.Arity = static_cast<unsigned>(Form[2].size());
    for (const SExpr &T : Form[2].list())
      if (!parseType(T))
        return false;
    if (!parseType(Form[3]))
      return false;
    M.OpDecls.push_back(std::move(D));
    return true;
  }

  ExprPtr parseExpr(const SExpr &Form) {
    auto E = std::make_unique<Expr>();
    E->Line = Form.line();
    if (Form.isInteger()) {
      E->TheKind = Expr::Kind::Number;
      E->Number = static_cast<uint64_t>(Form.integer());
      return E;
    }
    if (Form.isSymbol()) {
      E->TheKind = Expr::Kind::Ident;
      E->Name = Form.symbol();
      return E;
    }
    if (!Form.isList() || Form.size() == 0 || !Form[0].isSymbol()) {
      fail(Form, "malformed expression");
      return nullptr;
    }
    const std::string &Head = Form[0].symbol();
    if (Head == "\\deref") {
      if (Form.size() < 2 || Form.size() > 3) {
        fail(Form, "\\deref takes one address (and optional \\miss)");
        return nullptr;
      }
      E->TheKind = Expr::Kind::Deref;
      if (Form.size() == 3) {
        if (!Form[2].isSymbol("\\miss")) {
          fail(Form[2], "expected \\miss annotation");
          return nullptr;
        }
        E->Miss = true;
      }
      ExprPtr Addr = parseExpr(Form[1]);
      if (!Addr)
        return nullptr;
      E->Args.push_back(std::move(Addr));
      return E;
    }
    if (Head == "\\cast") {
      // (\cast type e) or (\cast e type).
      if (Form.size() != 3) {
        fail(Form, "\\cast takes a type and an expression");
        return nullptr;
      }
      E->TheKind = Expr::Kind::Cast;
      const SExpr *TypeForm = &Form[1];
      const SExpr *ValueForm = &Form[2];
      if (!Form[1].isSymbol() ||
          (!Form[1].isSymbol("long") && !Form[1].isSymbol("int") &&
           !Form[1].isSymbol("short") && !Form[1].isSymbol("byte")))
        std::swap(TypeForm, ValueForm);
      std::optional<Type> T = parseType(*TypeForm);
      if (!T)
        return nullptr;
      E->CastType = *T;
      ExprPtr V = parseExpr(*ValueForm);
      if (!V)
        return nullptr;
      E->Args.push_back(std::move(V));
      return E;
    }
    if (Head == "\\ite") {
      if (Form.size() != 4) {
        fail(Form, "\\ite takes condition, then, else");
        return nullptr;
      }
      E->TheKind = Expr::Kind::Ite;
      for (size_t I = 1; I < 4; ++I) {
        ExprPtr A = parseExpr(Form[I]);
        if (!A)
          return nullptr;
        E->Args.push_back(std::move(A));
      }
      return E;
    }
    // Generic application.
    E->TheKind = Expr::Kind::Apply;
    E->Name = Head;
    for (size_t I = 1; I < Form.size(); ++I) {
      ExprPtr A = parseExpr(Form[I]);
      if (!A)
        return nullptr;
      E->Args.push_back(std::move(A));
    }
    return E;
  }

  StmtPtr parseStmt(const SExpr &Form) {
    auto S = std::make_unique<Stmt>();
    S->Line = Form.line();
    if (Form.isForm("\\var")) {
      // (\var (name type [init]) body...)
      if (Form.size() < 3 || !Form[1].isList() || Form[1].size() < 2 ||
          !Form[1][0].isSymbol()) {
        fail(Form, "malformed \\var");
        return nullptr;
      }
      S->TheKind = Stmt::Kind::VarDecl;
      S->VarName = Form[1][0].symbol();
      std::optional<Type> T = parseType(Form[1][1]);
      if (!T)
        return nullptr;
      S->VarType = *T;
      if (Form[1].size() >= 3) {
        S->VarInit = parseExpr(Form[1][2]);
        if (!S->VarInit)
          return nullptr;
      }
      for (size_t I = 2; I < Form.size(); ++I) {
        StmtPtr Inner = parseStmt(Form[I]);
        if (!Inner)
          return nullptr;
        S->Body.push_back(std::move(Inner));
      }
      return S;
    }
    if (Form.isForm("\\semi")) {
      S->TheKind = Stmt::Kind::Seq;
      for (size_t I = 1; I < Form.size(); ++I) {
        StmtPtr Inner = parseStmt(Form[I]);
        if (!Inner)
          return nullptr;
        S->Body.push_back(std::move(Inner));
      }
      return S;
    }
    if (Form.isForm(":=")) {
      S->TheKind = Stmt::Kind::Assign;
      for (size_t I = 1; I < Form.size(); ++I) {
        const SExpr &Pair = Form[I];
        if (!Pair.isList() || Pair.size() != 2) {
          fail(Pair, "assignment element must be (target value)");
          return nullptr;
        }
        AssignTarget T;
        if (Pair[0].isSymbol()) {
          T.Var = Pair[0].symbol();
        } else if (Pair[0].isForm("\\deref")) {
          T.IsDeref = true;
          if (Pair[0].size() != 2) {
            fail(Pair[0], "\\deref target takes one address");
            return nullptr;
          }
          T.Addr = parseExpr(Pair[0][1]);
          if (!T.Addr)
            return nullptr;
        } else {
          fail(Pair[0], "assignment target must be a variable or \\deref");
          return nullptr;
        }
        ExprPtr V = parseExpr(Pair[1]);
        if (!V)
          return nullptr;
        S->Targets.push_back(std::move(T));
        S->Values.push_back(std::move(V));
      }
      if (S->Targets.empty()) {
        fail(Form, "empty assignment");
        return nullptr;
      }
      return S;
    }
    if (Form.isForm("\\do")) {
      // (\do [(\unroll n)] (-> cond body...))
      S->TheKind = Stmt::Kind::Do;
      size_t Idx = 1;
      while (Idx < Form.size() && (Form[Idx].isForm("\\unroll") ||
                                   Form[Idx].isForm("\\pipeline"))) {
        if (Form[Idx].isForm("\\pipeline")) {
          if (Form[Idx].size() != 1) {
            fail(Form[Idx], "\\pipeline takes no arguments");
            return nullptr;
          }
          S->Pipeline = true;
          ++Idx;
          continue;
        }
        if (Form[Idx].size() != 2 || !Form[Idx][1].isInteger() ||
            Form[Idx][1].integer() < 1) {
          fail(Form[Idx], "\\unroll takes a positive count");
          return nullptr;
        }
        S->Unroll = static_cast<unsigned>(Form[Idx][1].integer());
        ++Idx;
      }
      if (Idx >= Form.size() || !Form[Idx].isForm("->") ||
          Form[Idx].size() < 3) {
        fail(Form, "\\do needs (-> cond body...)");
        return nullptr;
      }
      const SExpr &Arrow = Form[Idx];
      S->Cond = parseExpr(Arrow[1]);
      if (!S->Cond)
        return nullptr;
      for (size_t I = 2; I < Arrow.size(); ++I) {
        StmtPtr Inner = parseStmt(Arrow[I]);
        if (!Inner)
          return nullptr;
        S->Body.push_back(std::move(Inner));
      }
      return S;
    }
    if (Form.isForm("\\assume")) {
      // (\assume (eq a b)) or (\assume (neq a b))
      if (Form.size() != 2 || !Form[1].isList() || Form[1].size() != 3 ||
          !Form[1][0].isSymbol()) {
        fail(Form, "\\assume takes (eq a b) or (neq a b)");
        return nullptr;
      }
      const std::string &Rel = Form[1][0].symbol();
      if (Rel != "eq" && Rel != "neq" && Rel != "=" && Rel != "!=") {
        fail(Form[1], "\\assume relation must be eq or neq");
        return nullptr;
      }
      S->TheKind = Stmt::Kind::Assume;
      S->AssumeEq = Rel == "eq" || Rel == "=";
      S->AssumeLhs = parseExpr(Form[1][1]);
      S->AssumeRhs = parseExpr(Form[1][2]);
      if (!S->AssumeLhs || !S->AssumeRhs)
        return nullptr;
      return S;
    }
    if (Form.isForm("\\if")) {
      // (\if cond then [else])
      if (Form.size() != 3 && Form.size() != 4) {
        fail(Form, "\\if takes condition, then-branch, optional else");
        return nullptr;
      }
      S->TheKind = Stmt::Kind::If;
      S->Cond = parseExpr(Form[1]);
      if (!S->Cond)
        return nullptr;
      StmtPtr Then = parseStmt(Form[2]);
      if (!Then)
        return nullptr;
      S->Body.push_back(std::move(Then));
      if (Form.size() == 4) {
        StmtPtr Else = parseStmt(Form[3]);
        if (!Else)
          return nullptr;
        S->ElseBody.push_back(std::move(Else));
      }
      return S;
    }
    fail(Form, "unknown statement form");
    return nullptr;
  }

  bool parseProc(const SExpr &Form, Module &M) {
    // (\procdecl name ((param type)...) rettype body)
    if (Form.size() != 5 || !Form[1].isSymbol() || !Form[2].isList())
      return fail(Form, "malformed \\procdecl");
    Proc P;
    P.Name = Form[1].symbol();
    for (const SExpr &Param : Form[2].list()) {
      if (!Param.isList() || Param.size() != 2 || !Param[0].isSymbol())
        return fail(Param, "parameter must be (name type)");
      std::optional<Type> T = parseType(Param[1]);
      if (!T)
        return false;
      P.Params.emplace_back(Param[0].symbol(), *T);
    }
    std::optional<Type> Ret = parseType(Form[3]);
    if (!Ret)
      return false;
    P.ReturnType = *Ret;
    P.Body = parseStmt(Form[4]);
    if (!P.Body)
      return false;
    M.Procs.push_back(std::move(P));
    return true;
  }
};

} // namespace

std::optional<Module> denali::lang::parseModule(const std::string &Text,
                                                std::string *ErrorOut) {
  return ModuleParser(ErrorOut).run(Text);
}
