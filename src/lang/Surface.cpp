//===- lang/Surface.cpp ---------------------------------------------------===//

#include "lang/Surface.h"

#include "lang/Parser.h"
#include "support/StringExtras.h"

#include <cassert>
#include <cctype>
#include <unordered_set>

using namespace denali;
using namespace denali::lang;

namespace {

//===----------------------------------------------------------------------===
// Lexer
//===----------------------------------------------------------------------===

enum class TokKind {
  End,
  Ident,   ///< Possibly \-prefixed (keywords and builtin references).
  Number,
  Punct,   ///< One of the operator/punctuation spellings.
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  uint64_t Int = 0;
  unsigned Line = 1, Col = 1;

  bool is(const char *P) const {
    return (Kind == TokKind::Punct || Kind == TokKind::Ident) && Text == P;
  }
};

class Lexer {
public:
  explicit Lexer(const std::string &Text) : Text(&Text) { advance(); }
  // Copyable so the parser can backtrack over the `x<3>` / `x < 3`
  // ambiguity.

  const Token &peek() const { return Cur; }
  Token take() {
    Token T = Cur;
    advance();
    return T;
  }

private:
  const std::string *Text;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;
  Token Cur;

  char at(size_t Off = 0) const {
    return Pos + Off < Text->size() ? (*Text)[Pos + Off] : '\0';
  }

  void bump() {
    if (at() == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  void skipTrivia() {
    for (;;) {
      if (std::isspace(static_cast<unsigned char>(at()))) {
        bump();
        continue;
      }
      if (at() == '/' && at(1) == '/') {
        while (at() && at() != '\n')
          bump();
        continue;
      }
      break;
    }
  }

  void advance() {
    skipTrivia();
    Cur = Token();
    Cur.Line = Line;
    Cur.Col = Col;
    char C = at();
    if (!C) {
      Cur.Kind = TokKind::End;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Num;
      if (C == '0' && (at(1) == 'x' || at(1) == 'X')) {
        Num += at();
        bump();
        Num += at();
        bump();
        while (std::isxdigit(static_cast<unsigned char>(at()))) {
          Num += at();
          bump();
        }
      } else {
        while (std::isdigit(static_cast<unsigned char>(at()))) {
          Num += at();
          bump();
        }
      }
      int64_t V = 0;
      parseIntegerLiteral(Num, V);
      Cur.Kind = TokKind::Number;
      Cur.Int = static_cast<uint64_t>(V);
      Cur.Text = Num;
      return;
    }
    if (C == '\\' || C == '_' ||
        std::isalpha(static_cast<unsigned char>(C))) {
      std::string Id;
      if (C == '\\') {
        Id += C;
        bump();
      }
      while (std::isalnum(static_cast<unsigned char>(at())) || at() == '_') {
        Id += at();
        bump();
      }
      Cur.Kind = TokKind::Ident;
      Cur.Text = std::move(Id);
      return;
    }
    // Punctuation, longest match first.
    static const char *TwoChar[] = {"->", ":=", "<=", ">=", "==", "!=",
                                    "<<", ">>", "**"};
    for (const char *P : TwoChar) {
      if (C == P[0] && at(1) == P[1]) {
        Cur.Kind = TokKind::Punct;
        Cur.Text = P;
        bump();
        bump();
        return;
      }
    }
    Cur.Kind = TokKind::Punct;
    Cur.Text = std::string(1, C);
    bump();
  }
};

//===----------------------------------------------------------------------===
// Parser
//===----------------------------------------------------------------------===

class SurfaceParser {
public:
  SurfaceParser(const std::string &Text, std::string *ErrorOut)
      : Lex(Text), ErrorOut(ErrorOut) {}

  std::optional<Module> run() {
    Module M;
    while (Lex.peek().Kind != TokKind::End) {
      const Token &T = Lex.peek();
      if (T.is("\\op")) {
        if (!parseOpDecl(M))
          return std::nullopt;
      } else if (T.is("\\axiom")) {
        if (!parseAxiom(M))
          return std::nullopt;
      } else if (T.is("\\proc")) {
        if (!parseProc(M))
          return std::nullopt;
      } else {
        fail(T, "expected \\op, \\axiom or \\proc");
        return std::nullopt;
      }
    }
    return M;
  }

private:
  Lexer Lex;
  std::string *ErrorOut;

  bool fail(const Token &T, const std::string &Msg) {
    if (ErrorOut)
      *ErrorOut = strFormat("%u:%u: %s (at '%s')", T.Line, T.Col,
                            Msg.c_str(), T.Text.c_str());
    return false;
  }

  bool expect(const char *P) {
    if (Lex.peek().is(P)) {
      Lex.take();
      return true;
    }
    return fail(Lex.peek(), strFormat("expected '%s'", P));
  }

  bool expectIdent(std::string &Out) {
    if (Lex.peek().Kind == TokKind::Ident && Lex.peek().Text[0] != '\\') {
      Out = Lex.take().Text;
      return true;
    }
    return fail(Lex.peek(), "expected an identifier");
  }

  std::optional<Type> parseTypeName() {
    const Token &T = Lex.peek();
    Type Out;
    if (T.is("long") || T.is("int"))
      Out.Kind = T.is("long") ? TypeKind::Long : TypeKind::Int;
    else if (T.is("short"))
      Out.Kind = TypeKind::Short;
    else if (T.is("byte"))
      Out.Kind = TypeKind::Byte;
    else {
      fail(T, "expected a type name");
      return std::nullopt;
    }
    Lex.take();
    while (Lex.peek().is("*")) {
      Lex.take();
      Out.Kind = TypeKind::Ptr;
    }
    return Out;
  }

  // \op add : [ long, long ] -> long ;
  bool parseOpDecl(Module &M) {
    Lex.take(); // \op
    OpDecl D;
    if (!expectIdent(D.Name))
      return false;
    if (!expect(":") || !expect("["))
      return false;
    if (!Lex.peek().is("]")) {
      for (;;) {
        if (!parseTypeName())
          return false;
        ++D.Arity;
        if (Lex.peek().is(",")) {
          Lex.take();
          continue;
        }
        break;
      }
    }
    if (!expect("]") || !expect("->"))
      return false;
    if (!parseTypeName())
      return false;
    if (!expect(";"))
      return false;
    M.OpDecls.push_back(std::move(D));
    return true;
  }

  // \axiom \forall [ a, b ] add(a, b) = add(b, a) ;
  // \axiom reg7 = 0 ;
  bool parseAxiom(Module &M) {
    Token Start = Lex.take(); // \axiom
    std::vector<std::string> Vars;
    if (Lex.peek().is("\\forall")) {
      Lex.take();
      if (!expect("["))
        return false;
      for (;;) {
        std::string Name;
        if (!expectIdent(Name))
          return false;
        Vars.push_back(Name);
        if (Lex.peek().is(",")) {
          Lex.take();
          continue;
        }
        break;
      }
      if (!expect("]"))
        return false;
    }
    ExprPtr Lhs = parseExpr();
    if (!Lhs)
      return false;
    bool IsEq;
    if (Lex.peek().is("=") || Lex.peek().is("==")) {
      IsEq = true;
    } else if (Lex.peek().is("!=")) {
      IsEq = false;
    } else {
      return fail(Lex.peek(), "expected '=' or '!=' in axiom");
    }
    Lex.take();
    ExprPtr Rhs = parseExpr();
    if (!Rhs)
      return false;
    if (!expect(";"))
      return false;

    // Assemble the prototype-syntax S-expression the axiom loader eats.
    std::vector<sexpr::SExpr> Lit;
    Lit.push_back(sexpr::SExpr::makeSymbol(IsEq ? "eq" : "neq"));
    std::optional<sexpr::SExpr> L = exprToSExpr(*Lhs);
    std::optional<sexpr::SExpr> R = exprToSExpr(*Rhs);
    if (!L || !R)
      return false;
    Lit.push_back(std::move(*L));
    Lit.push_back(std::move(*R));
    sexpr::SExpr Body = sexpr::SExpr::makeList(std::move(Lit), Start.Line,
                                               Start.Col);
    if (!Vars.empty()) {
      std::vector<sexpr::SExpr> VarList;
      for (const std::string &V : Vars)
        VarList.push_back(sexpr::SExpr::makeSymbol(V));
      std::vector<sexpr::SExpr> Forall;
      Forall.push_back(sexpr::SExpr::makeSymbol("forall"));
      Forall.push_back(sexpr::SExpr::makeList(std::move(VarList)));
      Forall.push_back(std::move(Body));
      Body = sexpr::SExpr::makeList(std::move(Forall), Start.Line,
                                    Start.Col);
    }
    std::vector<sexpr::SExpr> Ax;
    Ax.push_back(sexpr::SExpr::makeSymbol("\\axiom"));
    Ax.push_back(std::move(Body));
    M.Axioms.push_back(
        sexpr::SExpr::makeList(std::move(Ax), Start.Line, Start.Col));
    return true;
  }

  /// Converts a surface expression to the prototype S-expression form
  /// (used for axiom bodies).
  std::optional<sexpr::SExpr> exprToSExpr(const Expr &E) {
    switch (E.TheKind) {
    case Expr::Kind::Number:
      return sexpr::SExpr::makeInteger(static_cast<int64_t>(E.Number),
                                       E.Line);
    case Expr::Kind::Ident:
      return sexpr::SExpr::makeSymbol(E.Name, E.Line);
    case Expr::Kind::Apply: {
      std::vector<sexpr::SExpr> L;
      L.push_back(sexpr::SExpr::makeSymbol(E.Name));
      for (const ExprPtr &A : E.Args) {
        std::optional<sexpr::SExpr> C = exprToSExpr(*A);
        if (!C)
          return std::nullopt;
        L.push_back(std::move(*C));
      }
      return sexpr::SExpr::makeList(std::move(L), E.Line);
    }
    case Expr::Kind::Cast: {
      const char *Op = E.CastType.Kind == TypeKind::Short  ? "zext16"
                       : E.CastType.Kind == TypeKind::Byte ? "zext8"
                       : E.CastType.Kind == TypeKind::Int  ? "sext32"
                                                           : nullptr;
      std::optional<sexpr::SExpr> C = exprToSExpr(*E.Args[0]);
      if (!C)
        return std::nullopt;
      if (!Op)
        return C; // Cast to long/ptr is the identity.
      std::vector<sexpr::SExpr> L;
      L.push_back(sexpr::SExpr::makeSymbol(Op));
      L.push_back(std::move(*C));
      return sexpr::SExpr::makeList(std::move(L), E.Line);
    }
    case Expr::Kind::Ite: {
      std::vector<sexpr::SExpr> L;
      L.push_back(sexpr::SExpr::makeSymbol("cmovne"));
      for (const ExprPtr &A : E.Args) {
        std::optional<sexpr::SExpr> C = exprToSExpr(*A);
        if (!C)
          return std::nullopt;
        L.push_back(std::move(*C));
      }
      return sexpr::SExpr::makeList(std::move(L), E.Line);
    }
    case Expr::Kind::Deref:
      if (ErrorOut)
        *ErrorOut = strFormat("%u: memory dereference is not allowed in "
                              "axioms (quantify over values instead)",
                              E.Line);
      return std::nullopt;
    }
    return std::nullopt;
  }

  //===-------------------------------------------------------------------===
  // Expressions (precedence climbing).
  //===-------------------------------------------------------------------===

  ExprPtr makeApply(const char *Op, std::vector<ExprPtr> Args,
                    unsigned Line) {
    auto E = std::make_unique<Expr>();
    E->TheKind = Expr::Kind::Apply;
    E->Name = Op;
    E->Args = std::move(Args);
    E->Line = Line;
    return E;
  }

  ExprPtr parseExpr() { return parseBinary(0); }

  /// Binary precedence tiers, loosest first.
  ExprPtr parseBinary(int Level) {
    struct Tier {
      const char *Toks[5];
    };
    static const Tier Tiers[] = {
        {{"|", nullptr}},
        {{"^", nullptr}},
        {{"&", nullptr}},
        {{"==", "!=", nullptr}},
        {{"<", "<=", ">", ">=", nullptr}},
        {{"<<", ">>", nullptr}},
        {{"+", "-", nullptr}},
        {{"*", "**", nullptr}},
    };
    constexpr int NumTiers = static_cast<int>(std::size(Tiers));
    if (Level >= NumTiers)
      return parseUnary();
    ExprPtr Lhs = parseBinary(Level + 1);
    if (!Lhs)
      return nullptr;
    for (;;) {
      const Token &T = Lex.peek();
      const char *Match = nullptr;
      for (const char *P : Tiers[Level].Toks) {
        if (!P)
          break;
        if (T.is(P)) {
          Match = P;
          break;
        }
      }
      if (!Match)
        return Lhs;
      // `x<3>` byte selection is handled in parsePostfix; reaching here
      // with '<' means comparison.
      unsigned Line = T.Line;
      Lex.take();
      ExprPtr Rhs = parseBinary(Level + 1);
      if (!Rhs)
        return nullptr;
      std::string Op = Match;
      if (Op == "|")
        Lhs = makeApply("or64", vec(std::move(Lhs), std::move(Rhs)), Line);
      else if (Op == "^")
        Lhs = makeApply("xor64", vec(std::move(Lhs), std::move(Rhs)), Line);
      else if (Op == "&")
        Lhs = makeApply("and64", vec(std::move(Lhs), std::move(Rhs)), Line);
      else if (Op == "==")
        Lhs = makeApply("cmpeq", vec(std::move(Lhs), std::move(Rhs)), Line);
      else if (Op == "!=") {
        // a != b  =  cmpeq(cmpeq(a, b), 0)
        ExprPtr Eq =
            makeApply("cmpeq", vec(std::move(Lhs), std::move(Rhs)), Line);
        auto Zero = std::make_unique<Expr>();
        Zero->TheKind = Expr::Kind::Number;
        Zero->Number = 0;
        Lhs = makeApply("cmpeq", vec(std::move(Eq), std::move(Zero)), Line);
      } else if (Op == "<")
        Lhs = makeApply("cmplt", vec(std::move(Lhs), std::move(Rhs)), Line);
      else if (Op == "<=")
        Lhs = makeApply("cmple", vec(std::move(Lhs), std::move(Rhs)), Line);
      else if (Op == ">")
        Lhs = makeApply("cmplt", vec(std::move(Rhs), std::move(Lhs)), Line);
      else if (Op == ">=")
        Lhs = makeApply("cmple", vec(std::move(Rhs), std::move(Lhs)), Line);
      else if (Op == "<<")
        Lhs = makeApply("shl64", vec(std::move(Lhs), std::move(Rhs)), Line);
      else if (Op == ">>")
        Lhs = makeApply("shr64", vec(std::move(Lhs), std::move(Rhs)), Line);
      else if (Op == "+")
        Lhs = makeApply("add64", vec(std::move(Lhs), std::move(Rhs)), Line);
      else if (Op == "-")
        Lhs = makeApply("sub64", vec(std::move(Lhs), std::move(Rhs)), Line);
      else if (Op == "*")
        Lhs = makeApply("mul64", vec(std::move(Lhs), std::move(Rhs)), Line);
      else if (Op == "**")
        Lhs = makeApply("pow", vec(std::move(Lhs), std::move(Rhs)), Line);
    }
  }

  static std::vector<ExprPtr> vec(ExprPtr A, ExprPtr B) {
    std::vector<ExprPtr> V;
    V.push_back(std::move(A));
    V.push_back(std::move(B));
    return V;
  }

  ExprPtr parseUnary() {
    const Token &T = Lex.peek();
    if (T.is("-")) {
      unsigned Line = Lex.take().Line;
      ExprPtr A = parseUnary();
      if (!A)
        return nullptr;
      std::vector<ExprPtr> V;
      V.push_back(std::move(A));
      return makeApply("neg64", std::move(V), Line);
    }
    if (T.is("~")) {
      unsigned Line = Lex.take().Line;
      ExprPtr A = parseUnary();
      if (!A)
        return nullptr;
      std::vector<ExprPtr> V;
      V.push_back(std::move(A));
      return makeApply("not64", std::move(V), Line);
    }
    if (T.is("*")) {
      // Memory read, optional \miss annotation after the operand.
      unsigned Line = Lex.take().Line;
      ExprPtr Addr = parseUnary();
      if (!Addr)
        return nullptr;
      auto E = std::make_unique<Expr>();
      E->TheKind = Expr::Kind::Deref;
      E->Line = Line;
      E->Args.push_back(std::move(Addr));
      if (Lex.peek().is("\\miss")) {
        Lex.take();
        E->Miss = true;
      }
      return E;
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    if (!E)
      return nullptr;
    for (;;) {
      // Byte selection: expr '<' INT '>' (Figure 3's w<i>).
      if (Lex.peek().is("<")) {
        // Only commit when the lookahead is exactly <INT>.
        Lexer Save = Lex;
        Lex.take();
        if (Lex.peek().Kind == TokKind::Number) {
          Token Num = Lex.take();
          if (Lex.peek().is(">")) {
            Lex.take();
            auto Idx = std::make_unique<Expr>();
            Idx->TheKind = Expr::Kind::Number;
            Idx->Number = Num.Int;
            E = makeApply("selectb", vec(std::move(E), std::move(Idx)),
                          Num.Line);
            continue;
          }
        }
        Lex = Save; // Comparison after all.
        return E;
      }
      return E;
    }
  }

  ExprPtr parsePrimary() {
    Token T = Lex.peek();
    if (T.Kind == TokKind::Number) {
      Lex.take();
      auto E = std::make_unique<Expr>();
      E->TheKind = Expr::Kind::Number;
      E->Number = T.Int;
      E->Line = T.Line;
      return E;
    }
    if (T.is("(")) {
      Lex.take();
      ExprPtr E = parseExpr();
      if (!E)
        return nullptr;
      if (!expect(")"))
        return nullptr;
      return E;
    }
    if (T.is("\\cast")) {
      Lex.take();
      if (!expect("("))
        return nullptr;
      // (expr, type) per Figure 5; also (type, expr).
      auto E = std::make_unique<Expr>();
      E->TheKind = Expr::Kind::Cast;
      E->Line = T.Line;
      if (Lex.peek().is("long") || Lex.peek().is("int") ||
          Lex.peek().is("short") || Lex.peek().is("byte")) {
        std::optional<Type> Ty = parseTypeName();
        if (!Ty || !expect(","))
          return nullptr;
        E->CastType = *Ty;
        ExprPtr V = parseExpr();
        if (!V || !expect(")"))
          return nullptr;
        E->Args.push_back(std::move(V));
        return E;
      }
      ExprPtr V = parseExpr();
      if (!V || !expect(","))
        return nullptr;
      std::optional<Type> Ty = parseTypeName();
      if (!Ty || !expect(")"))
        return nullptr;
      E->CastType = *Ty;
      E->Args.push_back(std::move(V));
      return E;
    }
    if (T.is("\\ite")) {
      Lex.take();
      if (!expect("("))
        return nullptr;
      auto E = std::make_unique<Expr>();
      E->TheKind = Expr::Kind::Ite;
      E->Line = T.Line;
      for (int I = 0; I < 3; ++I) {
        if (I && !expect(","))
          return nullptr;
        ExprPtr A = parseExpr();
        if (!A)
          return nullptr;
        E->Args.push_back(std::move(A));
      }
      if (!expect(")"))
        return nullptr;
      return E;
    }
    if (T.Kind == TokKind::Ident) {
      Lex.take();
      // Call or plain identifier. \-prefixed builtins keep the backslash
      // (the GMA translator strips it).
      if (Lex.peek().is("(")) {
        Lex.take();
        auto E = std::make_unique<Expr>();
        E->TheKind = Expr::Kind::Apply;
        E->Name = T.Text;
        E->Line = T.Line;
        if (!Lex.peek().is(")")) {
          for (;;) {
            ExprPtr A = parseExpr();
            if (!A)
              return nullptr;
            E->Args.push_back(std::move(A));
            if (Lex.peek().is(",")) {
              Lex.take();
              continue;
            }
            break;
          }
        }
        if (!expect(")"))
          return nullptr;
        return E;
      }
      if (T.Text[0] == '\\' && !T.is("\\res")) {
        fail(T, "builtin reference used without arguments");
        return nullptr;
      }
      auto E = std::make_unique<Expr>();
      E->TheKind = Expr::Kind::Ident;
      E->Name = T.Text == "\\res" ? "\\res" : T.Text;
      E->Line = T.Line;
      return E;
    }
    fail(T, "expected an expression");
    return nullptr;
  }

  //===-------------------------------------------------------------------===
  // Statements
  //===-------------------------------------------------------------------===

  bool atStmtsEnd() {
    const Token &T = Lex.peek();
    return T.Kind == TokKind::End || T.is("\\end") || T.is("\\od") ||
           T.is("\\else") || T.is("\\fi");
  }

  /// Parses statements up to \end or \od (not consumed). \var consumes the
  /// remaining statements as its scope.
  bool parseStmts(std::vector<StmtPtr> &Out) {
    for (;;) {
      while (Lex.peek().is(";"))
        Lex.take();
      if (atStmtsEnd())
        return true;
      StmtPtr S = parseStmt();
      if (!S)
        return false;
      bool WasVar = S->TheKind == Stmt::Kind::VarDecl;
      Out.push_back(std::move(S));
      if (WasVar)
        return true; // The decl swallowed the rest of the scope.
      if (Lex.peek().is(";")) {
        Lex.take();
        continue;
      }
      return true; // Last statement before \end / \od.
    }
  }

  StmtPtr parseStmt() {
    const Token &T = Lex.peek();
    if (T.is("\\var")) {
      Lex.take();
      auto S = std::make_unique<Stmt>();
      S->TheKind = Stmt::Kind::VarDecl;
      S->Line = T.Line;
      if (!expectIdent(S->VarName))
        return nullptr;
      if (!expect(":"))
        return nullptr;
      std::optional<Type> Ty = parseTypeName();
      if (!Ty)
        return nullptr;
      S->VarType = *Ty;
      if (Lex.peek().is(":=")) {
        Lex.take();
        S->VarInit = parseExpr();
        if (!S->VarInit)
          return nullptr;
      }
      if (!expect("\\in"))
        return nullptr;
      if (!parseStmts(S->Body))
        return nullptr;
      return S;
    }
    if (T.is("\\do")) {
      Lex.take();
      auto S = std::make_unique<Stmt>();
      S->TheKind = Stmt::Kind::Do;
      S->Line = T.Line;
      while (Lex.peek().is("\\unroll") || Lex.peek().is("\\pipeline")) {
        if (Lex.peek().is("\\pipeline")) {
          Lex.take();
          S->Pipeline = true;
          continue;
        }
        Lex.take();
        if (Lex.peek().Kind != TokKind::Number || Lex.peek().Int < 1) {
          fail(Lex.peek(), "\\unroll takes a positive count");
          return nullptr;
        }
        S->Unroll = static_cast<unsigned>(Lex.take().Int);
      }
      S->Cond = parseExpr();
      if (!S->Cond)
        return nullptr;
      if (!expect("->"))
        return nullptr;
      if (!parseStmts(S->Body))
        return nullptr;
      if (!expect("\\od"))
        return nullptr;
      return S;
    }
    if (T.is("\\assume")) {
      Lex.take();
      auto S = std::make_unique<Stmt>();
      S->TheKind = Stmt::Kind::Assume;
      S->Line = T.Line;
      S->AssumeLhs = parseExpr();
      if (!S->AssumeLhs)
        return nullptr;
      if (Lex.peek().is("=") || Lex.peek().is("==")) {
        S->AssumeEq = true;
      } else if (Lex.peek().is("!=")) {
        S->AssumeEq = false;
      } else {
        fail(Lex.peek(), "expected '=' or '!=' in \\assume");
        return nullptr;
      }
      Lex.take();
      S->AssumeRhs = parseExpr();
      if (!S->AssumeRhs)
        return nullptr;
      return S;
    }
    if (T.is("\\if")) {
      Lex.take();
      auto S = std::make_unique<Stmt>();
      S->TheKind = Stmt::Kind::If;
      S->Line = T.Line;
      S->Cond = parseExpr();
      if (!S->Cond)
        return nullptr;
      if (!expect("->"))
        return nullptr;
      if (!parseStmts(S->Body))
        return nullptr;
      if (Lex.peek().is("\\else")) {
        Lex.take();
        if (!parseStmts(S->ElseBody))
          return nullptr;
      }
      if (!expect("\\fi"))
        return nullptr;
      return S;
    }
    return parseAssign();
  }

  struct ParsedTarget {
    AssignTarget Target;
    std::optional<uint64_t> ByteIndex; ///< Set for r<i> targets.
    unsigned Line = 0;
  };

  std::optional<ParsedTarget> parseTarget() {
    ParsedTarget Out;
    Token T = Lex.peek();
    Out.Line = T.Line;
    if (T.is("*")) {
      Lex.take();
      Out.Target.IsDeref = true;
      Out.Target.Addr = parseUnary();
      if (!Out.Target.Addr)
        return std::nullopt;
      return Out;
    }
    if (T.is("\\res")) {
      Lex.take();
      Out.Target.Var = "\\res";
      return Out;
    }
    if (T.Kind != TokKind::Ident || T.Text[0] == '\\') {
      fail(T, "expected an assignment target");
      return std::nullopt;
    }
    Lex.take();
    Out.Target.Var = T.Text;
    // r<i> byte target.
    if (Lex.peek().is("<")) {
      Lexer Save = Lex;
      Lex.take();
      if (Lex.peek().Kind == TokKind::Number) {
        Token Num = Lex.take();
        if (Lex.peek().is(">")) {
          Lex.take();
          Out.ByteIndex = Num.Int;
          return Out;
        }
      }
      Lex = Save;
    }
    return Out;
  }

  StmtPtr parseAssign() {
    std::vector<ParsedTarget> Targets;
    for (;;) {
      std::optional<ParsedTarget> T = parseTarget();
      if (!T)
        return nullptr;
      Targets.push_back(std::move(*T));
      if (Lex.peek().is(",")) {
        Lex.take();
        continue;
      }
      break;
    }
    if (!expect(":="))
      return nullptr;
    std::vector<ExprPtr> Values;
    for (;;) {
      ExprPtr V = parseExpr();
      if (!V)
        return nullptr;
      Values.push_back(std::move(V));
      if (Lex.peek().is(",")) {
        Lex.take();
        continue;
      }
      break;
    }
    if (Targets.size() != Values.size()) {
      if (ErrorOut)
        *ErrorOut = strFormat("%u: %zu targets but %zu values",
                              Targets[0].Line, Targets.size(),
                              Values.size());
      return nullptr;
    }
    // Byte targets r<i> := v desugar to r := storeb(r, i, v); the
    // simultaneous read of the old r makes two byte writes to one variable
    // in a single statement ambiguous — reject that.
    std::unordered_set<std::string> ByteTargetVars;
    auto S = std::make_unique<Stmt>();
    S->TheKind = Stmt::Kind::Assign;
    S->Line = Targets[0].Line;
    for (size_t I = 0; I < Targets.size(); ++I) {
      ParsedTarget &T = Targets[I];
      if (T.ByteIndex) {
        if (!ByteTargetVars.insert(T.Target.Var).second) {
          if (ErrorOut)
            *ErrorOut = strFormat(
                "%u: two byte-writes to '%s' in one simultaneous "
                "assignment; use separate statements", T.Line,
                T.Target.Var.c_str());
          return nullptr;
        }
        auto Old = std::make_unique<Expr>();
        Old->TheKind = Expr::Kind::Ident;
        Old->Name = T.Target.Var;
        Old->Line = T.Line;
        auto Idx = std::make_unique<Expr>();
        Idx->TheKind = Expr::Kind::Number;
        Idx->Number = *T.ByteIndex;
        std::vector<ExprPtr> Args;
        Args.push_back(std::move(Old));
        Args.push_back(std::move(Idx));
        Args.push_back(std::move(Values[I]));
        Values[I] = makeApply("storeb", std::move(Args), T.Line);
      }
      S->Targets.push_back(std::move(T.Target));
      S->Values.push_back(std::move(Values[I]));
    }
    return S;
  }

  // \proc name : [ params ] -> type = stmts \end
  bool parseProc(Module &M) {
    Lex.take(); // \proc
    Proc P;
    if (!expectIdent(P.Name))
      return false;
    if (!expect(":") || !expect("["))
      return false;
    if (!Lex.peek().is("]")) {
      for (;;) {
        // name (, name)* : type
        std::vector<std::string> Names;
        for (;;) {
          std::string N;
          if (!expectIdent(N))
            return false;
          Names.push_back(N);
          if (Lex.peek().is(",")) {
            Lex.take();
            continue;
          }
          break;
        }
        if (!expect(":"))
          return false;
        std::optional<Type> Ty = parseTypeName();
        if (!Ty)
          return false;
        for (const std::string &N : Names)
          P.Params.emplace_back(N, *Ty);
        if (Lex.peek().is(";") || Lex.peek().is(",")) {
          Lex.take();
          continue;
        }
        break;
      }
    }
    if (!expect("]") || !expect("->"))
      return false;
    std::optional<Type> Ret = parseTypeName();
    if (!Ret)
      return false;
    P.ReturnType = *Ret;
    if (!expect("="))
      return false;
    auto Body = std::make_unique<Stmt>();
    Body->TheKind = Stmt::Kind::Seq;
    if (!parseStmts(Body->Body))
      return false;
    if (!expect("\\end"))
      return false;
    P.Body = std::move(Body);
    M.Procs.push_back(std::move(P));
    return true;
  }
};

} // namespace

std::optional<Module>
denali::lang::parseSurfaceModule(const std::string &Text,
                                 std::string *ErrorOut) {
  return SurfaceParser(Text, ErrorOut).run();
}

std::optional<Module> denali::lang::parseAnyModule(const std::string &Text,
                                                   std::string *ErrorOut) {
  // The prototype syntax begins with '(' (after whitespace and ;-comments);
  // the surface syntax begins with a \keyword.
  size_t Pos = 0;
  while (Pos < Text.size()) {
    char C = Text[Pos];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    if (C == ';') {
      while (Pos < Text.size() && Text[Pos] != '\n')
        ++Pos;
      continue;
    }
    break;
  }
  if (Pos < Text.size() && Text[Pos] == '(')
    return parseModule(Text, ErrorOut);
  return parseSurfaceModule(Text, ErrorOut);
}
