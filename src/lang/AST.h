//===- lang/AST.h - Denali source language AST ------------------*- C++ -*-===//
///
/// \file
/// The abstract syntax of Denali's input language (paper, section 2 and
/// Figure 6): a low-level language of procedures over 64-bit words and
/// pointers, with guarded loops, multi-assignments, pointer dereferences,
/// cache-miss annotations, loop unrolling, and program-specific operator
/// declarations and axioms.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_LANG_AST_H
#define DENALI_LANG_AST_H

#include "sexpr/SExpr.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace denali {
namespace lang {

/// Source types. The language is essentially untyped 64-bit words; types
/// matter only for casts (short truncates to 16 bits) and documentation.
enum class TypeKind : uint8_t { Long, Int, Short, Byte, Ptr };

struct Type {
  TypeKind Kind = TypeKind::Long;
};

/// Expressions.
struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    Number,  ///< Integer literal.
    Ident,   ///< Variable / parameter reference.
    Apply,   ///< (op e1 e2 ...) — builtin or declared operator.
    Deref,   ///< (\deref e [\miss]) — memory read, optional miss hint.
    Cast,    ///< (\cast type e) — truncating cast.
    Ite      ///< (\ite c a b) — conditional expression (maps to cmov).
  };
  Kind TheKind = Kind::Number;
  uint64_t Number = 0;
  std::string Name; ///< Ident name or Apply operator name.
  std::vector<ExprPtr> Args;
  bool Miss = false; ///< Deref: annotated likely cache miss.
  Type CastType;
  unsigned Line = 0;
};

/// One assignment target: a variable or a memory location.
struct AssignTarget {
  bool IsDeref = false;
  std::string Var;  ///< When !IsDeref. "\res" names the result.
  ExprPtr Addr;     ///< When IsDeref.
};

/// Statements.
struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    VarDecl, ///< (\var (name type [init]) body)  — flattened by parsing.
    Assign,  ///< (:= (t1 e1) (t2 e2) ...) — simultaneous multi-assignment.
    Seq,     ///< (\semi s1 s2 ...)
    Do,      ///< (\do [(\unroll n)] [(\pipeline)] (-> cond body))
    Assume,  ///< (\assume (eq a b)) / (\assume (neq a b)) — trust facts.
    If       ///< (\if cond then [else]) — if-converted to cmov.
  };
  Kind TheKind = Kind::Seq;
  // VarDecl
  std::string VarName;
  Type VarType;
  ExprPtr VarInit; ///< May be null.
  // Assign
  std::vector<AssignTarget> Targets;
  std::vector<ExprPtr> Values;
  // Seq / Do body
  std::vector<StmtPtr> Body;
  // Assume
  bool AssumeEq = true;
  ExprPtr AssumeLhs, AssumeRhs;
  // If
  std::vector<StmtPtr> ElseBody;
  // Do / If
  ExprPtr Cond;
  unsigned Unroll = 1;
  /// \pipeline: software-pipeline the loop automatically — memory reads
  /// are hoisted into temporaries initialized before the loop and reloaded
  /// at the end of each iteration (the paper's section 8 design, which its
  /// prototype required the programmer to hand-specify). Note the
  /// transformed loop prefetches one iteration ahead.
  bool Pipeline = false;
  unsigned Line = 0;
};

/// A procedure.
struct Proc {
  std::string Name;
  std::vector<std::pair<std::string, Type>> Params;
  Type ReturnType;
  StmtPtr Body;
};

/// An operator declaration from \opdecl.
struct OpDecl {
  std::string Name;
  unsigned Arity = 0;
};

/// A whole source module: declarations, program-specific axioms (kept as
/// S-expressions; the driver parses them against the populated operator
/// table), and procedures.
struct Module {
  std::vector<OpDecl> OpDecls;
  std::vector<sexpr::SExpr> Axioms;
  std::vector<Proc> Procs;
};

} // namespace lang
} // namespace denali

#endif // DENALI_LANG_AST_H
