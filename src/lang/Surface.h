//===- lang/Surface.h - The envisioned surface syntax -----------*- C++ -*-===//
///
/// \file
/// Parser for the *envisioned* Denali syntax of Figures 3 and 5 — the
/// notation the paper says it would like instead of the prototype's
/// parenthesized input. Example (Figure 3):
///
///   \proc byteswap4 : [ a : int ] -> int =
///   \var r : int \in
///   r := 0 ;
///   r<0> := a<3> ;
///   r<1> := a<2> ;
///   r<2> := a<1> ;
///   r<3> := a<0> ;
///   \res := r
///   \end
///
/// and (Figure 5 flavor):
///
///   \op add : [ long, long ] -> long ;
///   \axiom \forall [ a, b ] add(a, b) = add(b, a) ;
///   \proc checksum : [ ptr, ptrend : long* ] -> short =
///   \var sum : long := 0 \in
///   \do ptr < ptrend ->
///     sum := add(sum, *ptr) ; ptr := ptr + 8
///   \od ;
///   \res := \cast(sum, short)
///   \end
///
/// `w<i>` denotes byte i of w (selectb); as an assignment target it
/// desugars to w := storeb(w, i, value). `*e` reads memory; `*e := v`
/// writes it. Loops support `\do \unroll 4 cond -> ... \od` and
/// `*p \miss` load annotations.
///
/// The parser produces the same lang::Module as the prototype syntax, so
/// everything downstream (GMA translation, matching, codegen) is shared.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_LANG_SURFACE_H
#define DENALI_LANG_SURFACE_H

#include "lang/AST.h"

#include <optional>
#include <string>

namespace denali {
namespace lang {

/// Parses the surface syntax. \returns std::nullopt with \p ErrorOut set
/// on failure.
std::optional<Module> parseSurfaceModule(const std::string &Text,
                                         std::string *ErrorOut);

/// Parses either syntax: the prototype's parenthesized form if the first
/// non-comment character is '(', the surface form otherwise. Comments are
/// ';' to end of line in both.
std::optional<Module> parseAnyModule(const std::string &Text,
                                     std::string *ErrorOut);

} // namespace lang
} // namespace denali

#endif // DENALI_LANG_SURFACE_H
