//===- lang/Parser.h - Denali source parser ---------------------*- C++ -*-===//
///
/// \file
/// Parses Denali source text (the LISP-like syntax of Figure 6) into a
/// lang::Module. Grammar, by example:
///
///   (\opdecl carry (long long) long)
///   (\axiom (forall (a b) (pats (carry a b))
///     (eq (carry a b) (\cmpult (\add64 a b) a))))
///   (\procdecl checksum ((ptr (\ref long)) (ptrend (\ref long))) short
///     (\var (sum long 0)
///     (\semi
///       (\do (-> (< ptr ptrend)
///         (\semi (:= (sum (add sum (\deref ptr))))
///                (:= (ptr (+ ptr 8))))))
///       (:= (\res (\cast short sum))))))
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_LANG_PARSER_H
#define DENALI_LANG_PARSER_H

#include "lang/AST.h"

#include <optional>
#include <string>

namespace denali {
namespace lang {

/// Parses source text. \returns std::nullopt with \p ErrorOut set on
/// failure (syntax error, malformed form, unknown type).
std::optional<Module> parseModule(const std::string &Text,
                                  std::string *ErrorOut);

} // namespace lang
} // namespace denali

#endif // DENALI_LANG_PARSER_H
