//===- examples/egraph_dump.cpp - Visualizing the Figure 2 E-graph --------===//
//
// Reproduces Figure 2 visually: builds reg6*4 + 1, saturates, and writes
// Graphviz dot for both the initial term DAG (Fig 2a) and the quiescent
// E-graph (Fig 2d) to the current directory. Render with
//
//   dot -Tpdf fig2_initial.dot -o fig2_initial.pdf
//   dot -Tpdf fig2_saturated.dot -o fig2_saturated.pdf
//
//===----------------------------------------------------------------------===//

#include "axioms/BuiltinAxioms.h"
#include "egraph/Analysis.h"
#include "egraph/EGraph.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"

#include <cstdio>

using namespace denali;
using namespace denali::egraph;

static bool writeFile(const char *Path, const std::string &Text) {
  FILE *Out = std::fopen(Path, "w");
  if (!Out)
    return false;
  std::fwrite(Text.data(), 1, Text.size(), Out);
  std::fclose(Out);
  return true;
}

int main() {
  ir::Context Ctx;
  EGraph G(Ctx);

  ClassId Mul = G.addNode(
      Ctx.Ops.builtin(ir::Builtin::Mul64),
      {G.addNode(Ctx.Ops.makeVariable("reg6"), {}), G.addConst(4)});
  ClassId Goal =
      G.addNode(Ctx.Ops.builtin(ir::Builtin::Add64), {Mul, G.addConst(1)});

  if (!writeFile("fig2_initial.dot", toGraphviz(G))) {
    std::printf("cannot write fig2_initial.dot\n");
    return 1;
  }
  std::printf("wrote fig2_initial.dot (%zu nodes, %zu classes)\n",
              G.numNodes(), G.numClasses());

  match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
  for (match::Elaborator &E : match::standardElaborators())
    M.addElaborator(std::move(E));
  match::MatchStats Stats = M.saturate(G);

  if (!writeFile("fig2_saturated.dot", toGraphviz(G))) {
    std::printf("cannot write fig2_saturated.dot\n");
    return 1;
  }
  std::printf("wrote fig2_saturated.dot (%zu nodes, %zu classes, "
              "%u rounds)\n", Stats.FinalNodes, Stats.FinalClasses,
              Stats.Rounds);
  std::printf("the goal class c%u holds %zu alternatives, including "
              "s4addl(reg6, 1)\n", G.find(Goal),
              G.classNodes(G.find(Goal)).size());
  return 0;
}
