//===- examples/quickstart.cpp - The Figure 2 walkthrough -----------------===//
//
// The smallest possible use of the library: superoptimize reg6*4 + 1.
// Denali's matcher discovers 4 = 2**2, the shift form reg6 << 2, and
// finally the single-instruction s4addq form; the SAT search proves no
// 0-cycle program exists and extracts the 1-cycle program.
//
// Build & run:  ./quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Superoptimizer.h"

#include <cstdio>

using namespace denali;

int main() {
  driver::Superoptimizer Opt;
  ir::Context &Ctx = Opt.context();

  // Build the goal term reg6*4 + 1 directly through the term API.
  ir::TermId Reg6 = Ctx.Terms.makeVar("reg6");
  ir::TermId Goal = Ctx.Terms.makeBuiltin(
      ir::Builtin::Add64,
      {Ctx.Terms.makeBuiltin(ir::Builtin::Mul64,
                             {Reg6, Ctx.Terms.makeConst(4)}),
       Ctx.Terms.makeConst(1)});

  std::printf("goal: %s\n\n", Ctx.Terms.toString(Goal).c_str());

  driver::GmaResult R = Opt.compileGoals("quickstart", {{"res", Goal}});
  if (!R.ok()) {
    std::printf("superoptimization failed: %s\n", R.Error.c_str());
    return 1;
  }

  std::printf("matching: %u rounds, %zu E-graph nodes, %zu classes\n",
              R.Matching.Rounds, R.Matching.FinalNodes,
              R.Matching.FinalClasses);
  for (const codegen::Probe &P : R.Search.Probes)
    std::printf("probe K=%u: %d vars, %llu clauses -> %s\n", P.Cycles,
                P.Stats.Vars, static_cast<unsigned long long>(P.Stats.Clauses),
                P.Result == sat::SolveResult::Sat ? "SAT (program found)"
                                                  : "UNSAT (lower bound)");
  std::printf("\n%s\n", R.Search.Program.toString().c_str());

  // Correct by design — and checked by differential testing anyway.
  if (auto Err = Opt.verify(R)) {
    std::printf("verification FAILED: %s\n", Err->c_str());
    return 1;
  }
  std::printf("verified against the reference semantics on random inputs.\n");
  return 0;
}
