//===- examples/custom_axioms.cpp - Program-specific facts ----------------===//
//
// Section 4: "a Denali source program may include axioms ... a powerful
// substitute for conventional macros", and trust annotations become ground
// axioms. This example:
//
//   1. defines an `avg` operator by axiom, then superoptimizes a use of
//      it (the axiom gives the code generator its implementation);
//   2. adds the ground fact that a register is a power-of-two-aligned
//      pointer (low bits zero), letting an OR become the cheaper
//      scaled-add-capable form;
//   3. computes the "least common power of two" of two registers, one of
//      the paper's section 8 tests.
//
//===----------------------------------------------------------------------===//

#include "driver/Superoptimizer.h"

#include <cstdio>

using namespace denali;

static bool show(driver::Superoptimizer &Opt, const char *Title,
                 driver::GmaResult R) {
  std::printf("=== %s ===\n", Title);
  if (!R.ok()) {
    std::printf("error: %s\n", R.Error.c_str());
    return false;
  }
  std::printf("%u cycles, %zu instructions\n%s\n", R.Search.Cycles,
              R.Search.Program.Instrs.size(),
              R.Search.Program.toString().c_str());
  if (auto Err = Opt.verify(R)) {
    std::printf("verification FAILED: %s\n", Err->c_str());
    return false;
  }
  std::printf("verified.\n\n");
  return true;
}

int main() {
  // --- 1. A defined operator. ---------------------------------------------
  {
    driver::Superoptimizer Opt;
    ir::Context &Ctx = Opt.context();
    Ctx.Ops.declareOp("avg", 2);
    std::string Err;
    // Floor-average without overflow: (a & b) + ((a ^ b) >> 1).
    if (!Opt.addAxiomsText(R"(
          (\axiom (forall (a b) (pats (avg a b))
            (eq (avg a b)
                (\add64 (\and64 a b) (\shr64 (\xor64 a b) 1)))))
        )", &Err)) {
      std::printf("axiom error: %s\n", Err.c_str());
      return 1;
    }
    ir::TermId Goal = Ctx.Terms.make(
        *Ctx.Ops.lookup("avg"),
        {Ctx.Terms.makeVar("a"), Ctx.Terms.makeVar("b")});
    if (!show(Opt, "avg(a, b) via a program axiom",
              Opt.compileGoals("avg", {{"res", Goal}})))
      return 1;
  }

  // --- 2. A trust annotation as a ground axiom. ----------------------------
  {
    driver::Superoptimizer Opt;
    ir::Context &Ctx = Opt.context();
    std::string Err;
    // The programmer promises: tag contains only low-3-bit values, and p
    // is 8-aligned, so p | tag = p + tag (provable from and-facts; here we
    // state the consequence directly, as \trust would).
    if (!Opt.addAxiomsText(R"(
          (\axiom (forall (x) (pats (\or64 p x)) (eq (\or64 p x) (\add64 p x))))
        )", &Err)) {
      std::printf("axiom error: %s\n", Err.c_str());
      return 1;
    }
    // Goal: (p | tag) * 4 + 1 — with the trust fact this is s4addq of an
    // addq, or even one lda-style addq chain.
    ir::TermId P = Ctx.Terms.makeVar("p");
    ir::TermId Tag = Ctx.Terms.makeVar("tag");
    ir::TermId Goal = Ctx.Terms.makeBuiltin(
        ir::Builtin::Add64,
        {Ctx.Terms.makeBuiltin(
             ir::Builtin::Mul64,
             {Ctx.Terms.makeBuiltin(ir::Builtin::Or64, {P, Tag}),
              Ctx.Terms.makeConst(4)}),
         Ctx.Terms.makeConst(1)});
    if (!show(Opt, "(p | tag)*4 + 1 with a trust axiom",
              Opt.compileGoals("tagged", {{"res", Goal}})))
      return 1;
  }

  // --- 3. Least common power of two (section 8). ---------------------------
  {
    driver::Superoptimizer Opt;
    ir::Context &Ctx = Opt.context();
    ir::TermId AB = Ctx.Terms.makeBuiltin(
        ir::Builtin::Or64,
        {Ctx.Terms.makeVar("a"), Ctx.Terms.makeVar("b")});
    ir::TermId Goal = Ctx.Terms.makeBuiltin(
        ir::Builtin::And64,
        {AB, Ctx.Terms.makeBuiltin(ir::Builtin::Neg64, {AB})});
    if (!show(Opt, "least common power of two: (a|b) & -(a|b)",
              Opt.compileGoals("lcp2", {{"res", Goal}})))
      return 1;
  }
  return 0;
}
