//===- examples/denali.cpp - Command-line driver --------------------------===//
//
// The denali tool: compiles a Denali source file (the paper's LISP-like
// input syntax, Figure 6) to annotated EV6 assembly on stdout.
//
//   denali [options] file.dnl
//     --machine NAME     target machine backend: alpha (default) or rv64
//     --max-cycles N     budget ceiling (default 16)
//     --binary-search    probe budgets by binary search (default linear)
//     --portfolio        probe a window of budgets concurrently, cancelling
//                        probes made irrelevant by a SAT answer
//     --threads N        portfolio worker count / window width
//                        (default: hardware concurrency)
//     --incremental      reuse one SAT solver across the budget ladder
//                        (monotone encoding + assumption per budget);
//                        composes with --binary-search, alone it runs
//                        the linear ladder incrementally
//     --match-budget N   per-axiom, per-round raw-match budget; an axiom
//                        that overflows sits out a round and returns with
//                        double the budget (0 = unlimited, the default)
//     --match-phases     phase the rule set: expansive axioms wait until
//                        the cheap simplification axioms quiesce
//     --match-threads N  fan the per-round match loop out over N worker
//                        threads (default 1 = sequential; results are
//                        identical for any N)
//     --match-eager-rebuild
//                        restore per-assert congruence repair instead of
//                        one batched rebuild per saturation round
//     --profile-ledger=FILE
//                        merge FILE (per-axiom saturation-profile JSONL)
//                        into the run and write the aggregate back on exit
//     --match-adaptive   seed per-axiom budgets and phases from ledger
//                        history (yield-per-microsecond ordering) instead
//                        of uniform budgets + blind doubling; runs that
//                        quiesce reach the identical closure
//     --show-nops        print nops in unfilled issue slots (Figure 4 style)
//     --no-verify        skip differential verification
//     --stats            print matcher/SAT statistics per GMA
//     --dump-cnf DIR     write each probe's CNF in DIMACS format
//     --explain-out=FILE write per-instruction derivation-chain
//                        explanations (axiom ids + substitutions) as JSON,
//                        and print the annotated listing on stdout
//     --egraph-dot=FILE  write the quiescent e-graph as Graphviz DOT
//     --egraph-json=FILE write the quiescent e-graph as JSON
//     --why-unsat        report which constraint families refute the
//                        budget one below the minimal feasible one
//     --trace-out=FILE   write a Chrome trace_event JSON of the run
//                        (load in chrome://tracing or Perfetto)
//     --jsonl-out=FILE   write the trace events as JSONL
//     --metrics-out=FILE write the plain-text metrics summary
//     --log-level=N      leveled pipeline diagnostics on stderr
//                        (1 = per-GMA, 2 = per-round/per-probe)
//
//===----------------------------------------------------------------------===//

#include "driver/Superoptimizer.h"
#include "machine/RV64.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace denali;

namespace {

/// Matches `--name=value` or `--name value`; \p I advances in the latter
/// form. \returns the value, or nullptr when \p Arg is a different option.
const char *flagValue(const char *Arg, const char *Name, int &I, int argc,
                      char **argv) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) != 0)
    return nullptr;
  if (Arg[Len] == '=')
    return Arg + Len + 1;
  if (Arg[Len] == '\0' && I + 1 < argc)
    return argv[++I];
  return nullptr;
}

} // namespace

int main(int argc, char **argv) {
  const char *Path = nullptr;
  bool ShowNops = false, Verify = true, Stats = false;
  std::string ExplainOut, EGraphDotOut, EGraphJsonOut;
  driver::Options Opts;
  Opts.Search.MaxCycles = 16;

  for (int I = 1; I < argc; ++I) {
    if (const char *V = flagValue(argv[I], "--trace-out", I, argc, argv)) {
      Opts.Obs.TraceOut = V;
    } else if (const char *V =
                   flagValue(argv[I], "--jsonl-out", I, argc, argv)) {
      Opts.Obs.JsonlOut = V;
    } else if (const char *V =
                   flagValue(argv[I], "--metrics-out", I, argc, argv)) {
      Opts.Obs.MetricsOut = V;
    } else if (const char *V =
                   flagValue(argv[I], "--log-level", I, argc, argv)) {
      Opts.Obs.LogLevel = std::atoi(V);
    } else if (const char *V =
                   flagValue(argv[I], "--machine", I, argc, argv)) {
      Opts.MachineName = V;
    } else if (!std::strcmp(argv[I], "--max-cycles") && I + 1 < argc) {
      Opts.Search.MaxCycles = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (!std::strcmp(argv[I], "--binary-search")) {
      Opts.Search.Strategy = codegen::SearchStrategy::Binary;
    } else if (!std::strcmp(argv[I], "--portfolio")) {
      Opts.Search.Strategy = codegen::SearchStrategy::Portfolio;
    } else if (!std::strcmp(argv[I], "--threads") && I + 1 < argc) {
      Opts.Search.Threads = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (!std::strcmp(argv[I], "--incremental")) {
      Opts.Search.Incremental = true;
    } else if (const char *V =
                   flagValue(argv[I], "--match-budget", I, argc, argv)) {
      Opts.Matching.MatchBudget =
          static_cast<uint64_t>(std::strtoull(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--match-phases")) {
      Opts.Matching.Phased = true;
    } else if (const char *V =
                   flagValue(argv[I], "--match-threads", I, argc, argv)) {
      Opts.Matching.Threads = static_cast<unsigned>(std::atoi(V));
    } else if (!std::strcmp(argv[I], "--match-eager-rebuild")) {
      Opts.Matching.EagerRebuild = true;
    } else if (const char *V =
                   flagValue(argv[I], "--profile-ledger", I, argc, argv)) {
      Opts.ProfileLedgerPath = V;
    } else if (!std::strcmp(argv[I], "--match-adaptive")) {
      Opts.MatchAdaptive = true;
    } else if (!std::strcmp(argv[I], "--show-nops")) {
      ShowNops = true;
    } else if (!std::strcmp(argv[I], "--no-verify")) {
      Verify = false;
    } else if (!std::strcmp(argv[I], "--stats")) {
      Stats = true;
    } else if (!std::strcmp(argv[I], "--dump-cnf") && I + 1 < argc) {
      Opts.Search.DumpCnfDir = argv[++I];
    } else if (const char *V =
                   flagValue(argv[I], "--explain-out", I, argc, argv)) {
      ExplainOut = V;
      Opts.Explain = true;
    } else if (const char *V =
                   flagValue(argv[I], "--egraph-dot", I, argc, argv)) {
      EGraphDotOut = V;
      Opts.EGraphDump = true;
    } else if (const char *V =
                   flagValue(argv[I], "--egraph-json", I, argc, argv)) {
      EGraphJsonOut = V;
      Opts.EGraphDump = true;
    } else if (!std::strcmp(argv[I], "--why-unsat")) {
      Opts.WhyUnsat = true;
    } else if (argv[I][0] != '-') {
      Path = argv[I];
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[I]);
      return 2;
    }
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: denali [--machine NAME] [--max-cycles N] "
                 "[--binary-search] "
                 "[--portfolio] [--threads N] [--incremental] "
                 "[--match-budget N] [--match-phases] [--match-threads N] "
                 "[--match-eager-rebuild] [--profile-ledger=FILE] "
                 "[--match-adaptive] [--show-nops] "
                 "[--no-verify] [--stats] [--dump-cnf DIR] "
                 "[--explain-out=FILE] [--egraph-dot=FILE] "
                 "[--egraph-json=FILE] [--why-unsat] "
                 "[--trace-out=FILE] [--jsonl-out=FILE] [--metrics-out=FILE] "
                 "[--log-level=N] file.dnl\n");
    return 2;
  }
  // Any observability output (or a log level) switches the layer on.
  Opts.Obs.Enabled = !Opts.Obs.TraceOut.empty() ||
                     !Opts.Obs.JsonlOut.empty() ||
                     !Opts.Obs.MetricsOut.empty() || Opts.Obs.LogLevel > 0;

  // Validate the backend name up front: a typo should be a clean usage
  // error, not the library's fatal abort.
  alpha::registerAlphaMachine();
  machine::registerRV64Machine();
  std::vector<std::string> Machines = machine::registeredMachines();
  if (std::find(Machines.begin(), Machines.end(), Opts.MachineName) ==
      Machines.end()) {
    std::string Known;
    for (const std::string &N : Machines)
      Known += (Known.empty() ? "" : ", ") + N;
    std::fprintf(stderr, "unknown machine '%s' (known: %s)\n",
                 Opts.MachineName.c_str(), Known.c_str());
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot open '%s'\n", Path);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  driver::Superoptimizer Opt(Opts);
  driver::CompileResult R = Opt.compileSource(Buf.str());
  if (!R.ok()) {
    std::fprintf(stderr, "%s: %s\n", Path, R.Error.c_str());
    return 1;
  }
  bool AllOk = true;
  std::string ExplainJson = "{\"gmas\": [\n";
  std::string EGraphDot, EGraphJson;
  bool FirstExplained = true;
  for (driver::GmaResult &G : R.Gmas) {
    EGraphDot += G.EGraphDotText;
    EGraphJson += G.EGraphJsonText;
    if (!G.ok()) {
      std::fprintf(stderr, "%s: %s: %s\n", Path, G.Gma.Name.c_str(),
                   G.Error.c_str());
      AllOk = false;
      continue;
    }
    if (Stats) {
      std::printf("; %s: match %.2fs (%u rounds, %zu nodes); "
                  "max live regs %u; budgets:",
                  G.Gma.Name.c_str(), G.MatchSeconds, G.Matching.Rounds,
                  G.Matching.FinalNodes,
                  alpha::maxLiveRegisters(G.Search.Program));
      for (const codegen::Probe &P : G.Search.Probes)
        std::printf(" %s", codegen::describeProbe(P).c_str());
      if (G.Search.CancelledProbes)
        std::printf(" (%zu cancelled, wall %.2fs, cpu %.2fs)",
                    G.Search.CancelledProbes, G.Search.WallSeconds,
                    G.Search.CpuSeconds);
      std::printf("\n");
    }
    if (Opts.WhyUnsat && !G.WhyUnsatText.empty())
      std::printf("; %s\n", G.WhyUnsatText.c_str());
    if (Opts.Explain) {
      std::printf("%s\n", G.ExplanationListing.c_str());
      ExplainJson += FirstExplained ? "" : ",\n";
      ExplainJson += G.ExplanationJson;
      FirstExplained = false;
    } else {
      std::printf("%s\n", G.Search.Program.toString(ShowNops).c_str());
    }
    if (Verify) {
      if (auto Err = Opt.verify(G)) {
        std::fprintf(stderr, "%s: %s: verification FAILED: %s\n", Path,
                     G.Gma.Name.c_str(), Err->c_str());
        AllOk = false;
      }
    }
  }
  ExplainJson += "\n]}\n";
  auto writeText = [&](const std::string &File, const std::string &Text,
                       const char *What) {
    if (File.empty())
      return;
    std::ofstream Out(File);
    if (!Out) {
      std::fprintf(stderr, "cannot write %s to '%s'\n", What, File.c_str());
      AllOk = false;
      return;
    }
    Out << Text;
    std::fprintf(stderr, "%s written to %s\n", What, File.c_str());
  };
  writeText(ExplainOut, ExplainJson, "explanation");
  writeText(EGraphDotOut, EGraphDot, "e-graph DOT");
  writeText(EGraphJsonOut, EGraphJson, "e-graph JSON");
  if (!Opts.ProfileLedgerPath.empty()) {
    std::string LedgerErr;
    if (!Opt.saveProfileLedger(&LedgerErr)) {
      std::fprintf(stderr, "cannot write profile ledger: %s\n",
                   LedgerErr.c_str());
      AllOk = false;
    } else {
      std::fprintf(stderr, "profile ledger written to %s\n",
                   Opts.ProfileLedgerPath.c_str());
    }
  }
  if (Opts.Obs.Enabled) {
    if (!obs::exportConfigured())
      AllOk = false;
    if (!Opts.Obs.TraceOut.empty())
      std::fprintf(stderr, "trace written to %s\n",
                   Opts.Obs.TraceOut.c_str());
    if (!Opts.Obs.MetricsOut.empty())
      std::fprintf(stderr, "metrics written to %s\n",
                   Opts.Obs.MetricsOut.c_str());
  }
  return AllOk ? 0 : 1;
}
