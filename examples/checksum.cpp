//===- examples/checksum.cpp - The paper's largest challenge --------------===//
//
// The packet-checksum routine of Figures 5/6: the 16-bit ones-complement
// sum of an array of 16-bit integers, with wraparound carry. As in the
// paper, the program supplies its own `add`/`carry` operators by axioms
// (a powerful substitute for macros), hand-specifies software pipelining
// through the v1..v4 temporaries, and unrolls four-fold word-parallel
// accumulation.
//
// The translator produces three GMAs (prologue, loop body, final folding);
// each is superoptimized and differentially verified.
//
//===----------------------------------------------------------------------===//

#include "driver/Superoptimizer.h"

#include <cstdio>

using namespace denali;

static const char *ChecksumSource = R"(
; carry returns the carry bit resulting from the
; unsigned 64-bit sum of its arguments.
(\opdecl carry (long long) long)
(\axiom (forall (a b) (pats (carry a b))
  (eq (carry a b) (\cmpult (\add64 a b) a))))
(\axiom (forall (a b) (pats (carry a b))
  (eq (carry a b) (\cmpult (\add64 a b) b))))

; unsigned 64-bit carry-wraparound add
(\opdecl add (long long) long)
(\axiom (forall (a b c) (pats (add a (add b c)))
  (eq (add a (add b c)) (add (add a b) c))))
(\axiom (forall (a b c) (pats (add (add a b) c))
  (eq (add a (add b c)) (add (add a b) c))))
(\axiom (forall (a b) (pats (add a b)) (eq (add a b) (add b a))))
(\axiom (forall (a b) (pats (add a b))
  (eq (add a b) (\add64 (\add64 a b) (carry a b)))))

; main procedure (Figure 6)
(\procdecl checksum ((ptr (\ref long)) (ptrend (\ref long))) short
  (\var (sum1 long 0) (\var (sum2 long 0)
  (\var (sum3 long 0) (\var (sum4 long 0)
  (\var (v1 long (\deref ptr))
  (\var (v2 long (\deref (+ ptr 8)))
  (\var (v3 long (\deref (+ ptr 16)))
  (\var (v4 long (\deref (+ ptr 24)))
  (\semi
    (\do (-> (< ptr ptrend)
      (\semi
        (:= (sum1 (add sum1 v1)) (sum2 (add sum2 v2))
            (sum3 (add sum3 v3)) (sum4 (add sum4 v4)))
        (:= (ptr (+ ptr 32)))
        (:= (v1 (\deref ptr)))
        (:= (v2 (\deref (+ ptr 8))))
        (:= (v3 (\deref (+ ptr 16))))
        (:= (v4 (\deref (+ ptr 24)))))))
    (\var (c1 long) (\var (c2 long) (\var (c3 long)
    (\var (s1 long) (\var (s2 long) (\var (s long)
    (\semi
      (:= (s1 (\add64 sum1 sum2)))
      (:= (c1 (carry sum1 sum2)))
      (:= (s2 (\add64 sum3 sum4)))
      (:= (c2 (carry sum3 sum4)))
      (:= (s (\add64 s1 s2)))
      (:= (c3 (carry s1 s2)))
      (:= (s (\add64 (\extwl s 0) (\add64 (\extwl s 1)
             (\add64 (\extwl s 2) (\extwl s 3))))))
      (:= (s (\add64 (\extwl s 0) (\add64 (\extwl s 1)
             (\add64 c1 (\add64 c2 c3))))))
      (:= (\res (\cast short s))))))))))))))))))))
)";

int main() {
  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 16;
  Opt.options().Matching.MaxNodes = 60000;

  driver::CompileResult R = Opt.compileSource(ChecksumSource);
  if (!R.ok()) {
    std::printf("error: %s\n", R.Error.c_str());
    return 1;
  }
  for (driver::GmaResult &G : R.Gmas) {
    std::printf("=== %s ===\n", G.Gma.Name.c_str());
    std::printf("GMA: %s\n", G.Gma.toString(Opt.context()).c_str());
    if (!G.ok()) {
      std::printf("error: %s\n", G.Error.c_str());
      return 1;
    }
    double SatSeconds = 0;
    for (const codegen::Probe &P : G.Search.Probes)
      SatSeconds += P.SolveSeconds;
    std::printf("\n%u cycles, %zu instructions "
                "(match %.2fs, SAT %.2fs over %zu probes)\n\n",
                G.Search.Cycles, G.Search.Program.Instrs.size(),
                G.MatchSeconds, SatSeconds, G.Search.Probes.size());
    std::printf("%s\n", G.Search.Program.toString().c_str());
    if (auto Err = Opt.verify(G)) {
      std::printf("verification FAILED: %s\n", Err->c_str());
      return 1;
    }
    std::printf("verified.\n\n");
  }
  return 0;
}
