//===- examples/byteswap.cpp - The paper's byte-swap challenge ------------===//
//
// Reproduces section 8's byte-swap problems: reversing the order of the
// n lower bytes of a register (the SPARC-emulator challenge for n = 4,
// Figure 3/4). The program is written in the Denali input language; the
// output matches the paper's 5-cycle EV6 result for n = 4.
//
//===----------------------------------------------------------------------===//

#include "driver/Superoptimizer.h"
#include "support/StringExtras.h"

#include <cstdio>
#include <string>

using namespace denali;

static std::string byteswapSource(unsigned N) {
  // Figure 3: r := 0; r<i> := a<n-1-i> for each byte i.
  std::string Body = "(\\var (r long 0)\n  (\\semi\n";
  for (unsigned I = 0; I < N; ++I)
    Body += strFormat("    (:= (r (\\storeb r %u (\\selectb a %u))))\n", I,
                      N - 1 - I);
  Body += "    (:= (\\res r))))";
  return strFormat("(\\procdecl byteswap%u ((a long)) long\n  %s)", N,
                   Body.c_str());
}

int main(int argc, char **argv) {
  unsigned N = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  if (N < 2 || N > 6) {
    std::printf("usage: byteswap [2..6]\n");
    return 1;
  }

  std::string Source = byteswapSource(N);
  std::printf("source:\n%s\n\n", Source.c_str());

  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 10;
  driver::CompileResult R = Opt.compileSource(Source);
  if (!R.ok()) {
    std::printf("error: %s\n", R.Error.c_str());
    return 1;
  }
  for (driver::GmaResult &G : R.Gmas) {
    if (!G.ok()) {
      std::printf("error: %s\n", G.Error.c_str());
      return 1;
    }
    std::printf("matched in %.2fs (%zu nodes); optimal budget %u cycles "
                "(%zu instructions)\n\n",
                G.MatchSeconds, G.Matching.FinalNodes, G.Search.Cycles,
                G.Search.Program.Instrs.size());
    std::printf("%s\n", G.Search.Program.toString(/*ShowNops=*/true).c_str());
    if (auto Err = Opt.verify(G)) {
      std::printf("verification FAILED: %s\n", Err->c_str());
      return 1;
    }
    std::printf("verified.\n");
  }
  return 0;
}
